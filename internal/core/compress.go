package core

import "repro/internal/heap"

// CompressionPolicy selects the pseudo-overflow strategy (§5.2.3).
type CompressionPolicy uint8

const (
	// CompressOne frees the first compressible pair found and resumes.
	CompressOne CompressionPolicy = iota
	// CompressAll folds every compressible pair in the table.
	CompressAll
)

// compressible reports whether entry id can be folded: both its children
// must be mergeable into a fresh heap object, and any child entries must
// be referenced only from this entry (ref == 1) and be unexpanded
// (heap-backed leaves or pure atoms), per Fig 4.8.
func (m *Machine) compressible(id EntryID) bool {
	e := m.lpt.get(id)
	if !e.inUse || e.hasAddr {
		return false
	}
	return m.childMergeable(e.car) && m.childMergeable(e.cdr)
}

func (m *Machine) childMergeable(c child) bool {
	switch c.kind {
	case childNil, childAtom:
		return true
	case childEntry:
		ce := m.lpt.get(c.id)
		return ce.inUse && ce.ref == 1 && !ce.stackBit && ce.hasAddr
	default: // childUnset — entry should have had an addr; not mergeable
		return false
	}
}

// compressEntry folds entry id: its children are merged into one fresh
// heap object whose address the entry adopts; child entries are freed
// (Fig 4.8 frees two table entries per compression in the common case).
func (m *Machine) compressEntry(id EntryID) (freed int, err error) {
	e := m.lpt.get(id)
	carWord, freedCar, err := m.childToWord(e.car)
	if err != nil {
		return 0, err
	}
	cdrWord, freedCdr, err := m.childToWord(e.cdr)
	if err != nil {
		return 0, err
	}
	merged, err := m.heap.Merge(carWord, cdrWord)
	if err != nil {
		return 0, err
	}
	e.car, e.cdr = child{}, child{}
	e.addr = merged
	e.hasAddr = true
	m.lpt.stats.CompressedPairs++
	return freedCar + freedCdr, nil
}

// childToWord converts a mergeable child into its heap word, releasing
// the child's LPT entry when it has one. The child entry's heap object is
// adopted by the merge rather than queued for reclamation.
func (m *Machine) childToWord(c child) (heap.Word, int, error) {
	switch c.kind {
	case childNil:
		return heap.NilWord, 0, nil
	case childAtom:
		return c.atom, 0, nil
	case childEntry:
		ce := m.lpt.get(c.id)
		w := ce.addr
		// Detach the address so freeing does not queue the object (it
		// lives on inside the merged parent), then drop the entry.
		ce.hasAddr = false
		ce.ref = 0
		m.lpt.stats.Refops++
		m.lpt.freeEntry(c.id)
		return w, 1, nil
	default:
		return heap.NilWord, 0, ErrLPTFull
	}
}

// compress handles pseudo overflow under the configured policy, returning
// the number of entries freed.
func (m *Machine) compress() (int, error) {
	m.lpt.stats.PseudoOverflow++
	freed := 0
	for id := EntryID(1); int(id) <= m.lpt.size(); id++ {
		if !m.compressible(id) {
			continue
		}
		n, err := m.compressEntry(id)
		if err != nil {
			return freed, err
		}
		freed += n
		if m.policy == CompressOne && freed > 0 {
			return freed, nil
		}
	}
	return freed, nil
}

// recoverCycles is the true-overflow recovery of §4.3.2.3: entries
// referenced only by dead internal cycles are found by marking from the
// externally-referenced roots and sweeping the rest.
func (m *Machine) recoverCycles() int {
	t := m.lpt
	m.lpt.stats.TrueOverflow++
	// Internal reference counts: how many live car/cdr fields point at
	// each entry.
	internal := make([]int32, len(t.entries))
	for id := 1; id < len(t.entries); id++ {
		e := &t.entries[id]
		if !e.inUse {
			continue
		}
		if e.car.kind == childEntry {
			internal[e.car.id]++
		}
		if e.cdr.kind == childEntry {
			internal[e.cdr.id]++
		}
	}
	// Roots: entries with external references (EP-held or stack bit).
	var stack []EntryID
	for id := 1; id < len(t.entries); id++ {
		e := &t.entries[id]
		e.mark = false
		if e.inUse && (e.ref > internal[id] || e.stackBit) {
			stack = append(stack, EntryID(id))
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e := t.get(id)
		if e.mark {
			continue
		}
		e.mark = true
		if e.car.kind == childEntry && !t.get(e.car.id).mark {
			stack = append(stack, e.car.id)
		}
		if e.cdr.kind == childEntry && !t.get(e.cdr.id).mark {
			stack = append(stack, e.cdr.id)
		}
	}
	// Sweep unmarked live entries: dead cycles.
	freed := 0
	for id := 1; id < len(t.entries); id++ {
		e := &t.entries[id]
		if e.inUse && !e.mark {
			e.ref = 0
			e.car, e.cdr = child{}, child{} // break links; peers also die
			t.freeEntry(EntryID(id))
			freed++
		}
	}
	t.stats.CyclesBroken += int64(freed)
	return freed
}

// allocEntry obtains an LPT entry, running the overflow ladder when the
// table is full: compression (pseudo overflow), then cycle recovery (true
// overflow), then ErrLPTFull, which the Machine translates into overflow
// mode.
func (m *Machine) allocEntry() (EntryID, error) {
	if id, err := m.lpt.alloc(); err == nil {
		return id, nil
	}
	if freed, err := m.compress(); err == nil && freed > 0 {
		return m.lpt.alloc()
	} else if err != nil {
		return 0, err
	}
	if m.recoverCycles() > 0 {
		return m.lpt.alloc()
	}
	return 0, ErrLPTFull
}
