package core

import (
	"testing"

	"repro/internal/sexpr"
)

// fillLPT occupies every LPT entry with externally held, incompressible
// unexpanded objects.
func fillLPT(t *testing.T, m *Machine) []Value {
	t.Helper()
	var held []Value
	for m.InUse() < m.lpt.size() {
		held = append(held, readList(t, m, "(a b)"))
	}
	return held
}

func TestCompressionFreesSplitChildren(t *testing.T) {
	m := newM(t, Config{LPTSize: 8, Policy: CompressOne})
	l := readList(t, m, "((a) (b))")
	// Split l fully: children (a) and (b) become entries referenced only
	// from l after the EP drops its holds.
	car, err := m.Car(l)
	if err != nil {
		t.Fatal(err)
	}
	cdr, err := m.Cdr(l)
	if err != nil {
		t.Fatal(err)
	}
	// cdr = ((b)); split it too so l's tree is l -> car (a), cdr -> ((b)).
	m.Release(car)
	m.Release(cdr)
	inUse := m.InUse()
	if inUse < 3 {
		t.Fatalf("expected expanded tree, InUse = %d", inUse)
	}
	// Now exhaust the table; allocation must succeed via compression.
	n := m.lpt.size() - m.InUse() + 2
	var held []Value
	for i := 0; i < n; i++ {
		held = append(held, readList(t, m, "(x)"))
	}
	_ = held
	st := m.Stats()
	if st.LPT.PseudoOverflow == 0 {
		t.Error("expected pseudo overflow compression")
	}
	if st.LPT.CompressedPairs == 0 {
		t.Error("expected compressed pairs")
	}
	if m.OverflowMode() {
		t.Error("compression should have avoided overflow mode")
	}
	// l still decodes correctly after being re-materialised.
	if got := valueStr(t, m, l); got != "((a) (b))" {
		t.Errorf("after compression: %s", got)
	}
}

func TestCompressAllFreesMore(t *testing.T) {
	run := func(policy CompressionPolicy) (avgOcc float64) {
		m := NewMachine(Config{LPTSize: 24, Policy: policy})
		// Repeatedly expand small trees and drop them, forcing periodic
		// compression.
		for i := 0; i < 40; i++ {
			v, err := m.ReadList(sexpr.List(
				sexpr.List(sexpr.Symbol("a")),
				sexpr.List(sexpr.Symbol("b")),
			), NilValue)
			if err != nil {
				return -1
			}
			if _, err := m.Car(v); err != nil {
				return -1
			}
			if _, err := m.Cdr(v); err != nil {
				return -1
			}
			// keep v bound; drop child holds implicitly (Car/Cdr retained
			// them — release to leave only internal refs)
		}
		return m.AvgOccupancy()
	}
	one := run(CompressOne)
	all := run(CompressAll)
	if one < 0 || all < 0 {
		t.Fatal("run failed")
	}
	// Compress-All keeps average occupancy at or below Compress-One
	// (Fig 5.3: "the Compress-One policy causes the average LPT occupancy
	// levels to be higher").
	if all > one+0.5 {
		t.Errorf("CompressAll occupancy %v should be <= CompressOne %v", all, one)
	}
}

func TestTrueOverflowCycleRecovery(t *testing.T) {
	m := newM(t, Config{LPTSize: 8})
	// Build a dead cycle: two conses pointing at each other with no
	// external references.
	a, err := m.Cons(NilValue, NilValue)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Cons(a, NilValue)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Rplacd(a, b); err != nil { // a.cdr = b, b.car = a: cycle
		t.Fatal(err)
	}
	m.Release(a)
	m.Release(b)
	// Both entries have ref 1 from each other: refcounting cannot free
	// them, and they are not compressible (no heap addresses).
	if m.InUse() != 2 {
		t.Fatalf("cycle entries = %d, want 2", m.InUse())
	}
	// Exhaust the table; the allocator must break the cycle.
	var held []Value
	for i := 0; i < m.lpt.size()-2; i++ {
		held = append(held, readList(t, m, "(x)"))
	}
	// Table is now full (6 held + 2 cycle). One more allocation triggers
	// recovery.
	extra := readList(t, m, "(y)")
	st := m.Stats()
	if st.LPT.TrueOverflow == 0 {
		t.Error("expected a true-overflow recovery pass")
	}
	if st.LPT.CyclesBroken != 2 {
		t.Errorf("CyclesBroken = %d, want 2", st.LPT.CyclesBroken)
	}
	if m.OverflowMode() {
		t.Error("cycle recovery should have avoided overflow mode")
	}
	if got := valueStr(t, m, extra); got != "(y)" {
		t.Errorf("extra = %s", got)
	}
}

func TestOverflowModeAndRecovery(t *testing.T) {
	m := newM(t, Config{LPTSize: 4})
	held := fillLPT(t, m)
	// Table full of live externally-held unexpanded objects: nothing to
	// compress, no cycles. A cons must degrade to overflow mode.
	v, err := m.Cons(held[0], held[1])
	if err != nil {
		t.Fatalf("overflow cons: %v", err)
	}
	if v.Kind != VHeap {
		t.Fatalf("overflow cons kind = %v, want VHeap", v.Kind)
	}
	if !m.OverflowMode() {
		t.Fatal("machine should be in overflow mode")
	}
	// Accesses on large identifiers work against the heap.
	car, err := m.Car(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, car); got != "(a b)" {
		t.Errorf("overflow car = %s", got)
	}
	st := m.Stats()
	if st.OverflowOps == 0 || st.ModeSwitches != 1 {
		t.Errorf("OverflowOps=%d ModeSwitches=%d", st.OverflowOps, st.ModeSwitches)
	}
	// Releasing every large identifier returns the machine to fast mode.
	m.Release(car)
	m.Release(v)
	if m.OverflowMode() {
		t.Error("machine should have returned to fast mode")
	}
	if got := m.Stats().ModeSwitches; got != 2 {
		t.Errorf("ModeSwitches = %d, want 2", got)
	}
	// Fast-mode operation resumes once entries free up.
	m.Release(held[0])
	fresh := readList(t, m, "(z)")
	if fresh.Kind != VList {
		t.Errorf("post-recovery readlist kind = %v", fresh.Kind)
	}
}

func TestSplitStackCountsReduceMessages(t *testing.T) {
	runOps := func(split bool) MachineStats {
		m := NewMachine(Config{LPTSize: 64, SplitStackCounts: split})
		l, _ := m.ReadList(mustParseHelper("(a b c d)"), NilValue)
		// Simulate function-call churn: bind/unbind the same object many
		// times, as argument passing does.
		for i := 0; i < 50; i++ {
			m.Retain(l)
		}
		for i := 0; i < 50; i++ {
			m.Release(l)
		}
		return m.Stats()
	}
	plain := runOps(false)
	split := runOps(true)
	if plain.EPLPMessages != plain.StackRefEvents {
		t.Errorf("unsplit: messages %d != events %d", plain.EPLPMessages, plain.StackRefEvents)
	}
	// Split counts: 100 stack events, but only the initial hold message
	// and the final zero-crossing cross the bus (plus the readlist hold).
	if split.EPLPMessages >= split.StackRefEvents/10 {
		t.Errorf("split: messages %d not ≪ events %d", split.EPLPMessages, split.StackRefEvents)
	}
	if split.MaxEPCount < 50 {
		t.Errorf("MaxEPCount = %d", split.MaxEPCount)
	}
}

func mustParseHelper(src string) sexpr.Value {
	v, err := sexpr.Parse(src)
	if err != nil {
		panic(err)
	}
	return v
}

func TestSplitStackCountsFreeOnZero(t *testing.T) {
	m := NewMachine(Config{LPTSize: 16, SplitStackCounts: true})
	v, err := m.ReadList(mustParseHelper("(a)"), NilValue)
	if err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 1 {
		t.Fatalf("InUse = %d", m.InUse())
	}
	m.Release(v)
	if m.InUse() != 0 {
		t.Errorf("entry should die when stack bit clears with no internal refs")
	}
}

// TestOrderedTraversal verifies the §5.3.1 analysis: a complete ordered
// traversal of a fresh list performs exactly n+p splits, and a repeated
// traversal performs none.
func TestOrderedTraversal(t *testing.T) {
	m := newM(t, Config{LPTSize: 512})
	src := "(((A B) C D) E F G)" // the Fig 5.6 example: n=7, p=2
	v := mustParse(t, src)
	met := sexpr.Measure(v)
	l, err := m.ReadList(v, NilValue)
	if err != nil {
		t.Fatal(err)
	}
	var traverse func(v Value) error
	traverse = func(v Value) error {
		if v.Kind != VList {
			return nil
		}
		car, err := m.Car(v)
		if err != nil {
			return err
		}
		if err := traverse(car); err != nil {
			return err
		}
		cdr, err := m.Cdr(v)
		if err != nil {
			return err
		}
		return traverse(cdr)
	}
	if err := traverse(l); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if int(st.HeapSplits) != met.N+met.P {
		t.Errorf("first traversal splits = %d, want n+p = %d", st.HeapSplits, met.N+met.P)
	}
	if err := traverse(l); err != nil {
		t.Fatal(err)
	}
	st2 := m.Stats()
	if st2.HeapSplits != st.HeapSplits {
		t.Errorf("repeat traversal split %d more times", st2.HeapSplits-st.HeapSplits)
	}
	// Thesis accounting (§5.3.1): references = 3 per internal node plus 1
	// per leaf; hits everything but the n+p first-touch splits. Our two
	// traversals issued 2 ops per internal node each; the second was all
	// hits, so the guaranteed floor holds:
	hitRate := float64(st2.LPT.Hits) / float64(st2.LPT.Hits+st2.LPT.Misses)
	if hitRate < 0.74 {
		t.Errorf("hit rate %.2f below the guaranteed ordered-traversal floor", hitRate)
	}
}

func TestTimingOverlap(t *testing.T) {
	p := DefaultTiming()
	m := NewMachine(Config{LPTSize: 256, Timing: &p})
	l := readList(t, m, "(a b c d e f g h)")
	// Walk the list twice: misses then hits.
	for pass := 0; pass < 2; pass++ {
		cur := l
		for cur.Kind == VList {
			next, err := m.Cdr(cur)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
	}
	// A burst of conses exercises post-return overlap.
	acc := NilValue
	for i := 0; i < 20; i++ {
		var err error
		acc, err = m.Cons(l, acc)
		if err != nil {
			t.Fatal(err)
		}
	}
	ts := m.Timing()
	if ts.Ops == 0 {
		t.Fatal("no timed ops recorded")
	}
	if ts.Speedup() <= 1.0 {
		t.Errorf("EP/LP overlap should beat serial execution: speedup = %.2f", ts.Speedup())
	}
	if ts.EPIdle == 0 {
		t.Error("EP should idle on heap splits (Fig 4.10/4.11)")
	}
	if ts.LPBusy == 0 || ts.EPClock == 0 {
		t.Error("empty timing stats")
	}
}

func TestTimingRplacDoesNotStallEP(t *testing.T) {
	p := DefaultTiming()
	m := NewMachine(Config{LPTSize: 64, Timing: &p})
	l := readList(t, m, "(a b)")
	if _, err := m.Car(l); err != nil { // expand first
		t.Fatal(err)
	}
	before := m.Timing()
	z := Value{Kind: VAtom, Atom: m.Heap().Atoms().Intern(sexpr.Symbol("z"))}
	if err := m.Rplaca(l, z); err != nil {
		t.Fatal(err)
	}
	after := m.Timing()
	// Fig 4.12: control passes back while the LP updates; the EP advance
	// is just lookup+send.
	epDelta := after.EPClock - before.EPClock
	want := p.EnvLookup + p.Send
	if epDelta != want+(after.EPIdle-before.EPIdle) {
		t.Errorf("rplaca EP time = %d (idle delta %d), want %d + idle",
			epDelta, after.EPIdle-before.EPIdle, want)
	}
}
