package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sexpr"
)

func mustParse(t *testing.T, src string) sexpr.Value {
	t.Helper()
	v, err := sexpr.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newM(t *testing.T, cfg Config) *Machine {
	t.Helper()
	return NewMachine(cfg)
}

func readList(t *testing.T, m *Machine, src string) Value {
	t.Helper()
	v, err := m.ReadList(mustParse(t, src), NilValue)
	if err != nil {
		t.Fatalf("ReadList(%s): %v", src, err)
	}
	return v
}

func valueStr(t *testing.T, m *Machine, v Value) string {
	t.Helper()
	sv, err := m.ValueOf(v)
	if err != nil {
		t.Fatalf("ValueOf: %v", err)
	}
	return sexpr.String(sv)
}

func TestReadListRoundTrip(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	for _, src := range []string{"(a b c)", "(a (b) c)", "((x y) z)", "(1 2 3)"} {
		v := readList(t, m, src)
		if v.Kind != VList {
			t.Fatalf("%s: kind = %v", src, v.Kind)
		}
		if got := valueStr(t, m, v); got != src {
			t.Errorf("%s decoded as %s", src, got)
		}
	}
	// Atoms and nil pass through without entries.
	av, err := m.ReadList(sexpr.Int(5), NilValue)
	if err != nil || av.Kind != VAtom {
		t.Errorf("atom readlist: %+v, %v", av, err)
	}
	nv, err := m.ReadList(nil, NilValue)
	if err != nil || nv.Kind != VNil {
		t.Errorf("nil readlist: %+v, %v", nv, err)
	}
}

func TestCarCdrHitMiss(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	l := readList(t, m, "(a b c)")
	// First car: miss (split).
	car, err := m.Car(l)
	if err != nil {
		t.Fatal(err)
	}
	if car.Kind != VAtom {
		t.Fatalf("car kind = %v", car.Kind)
	}
	if got := valueStr(t, m, car); got != "a" {
		t.Errorf("car = %s", got)
	}
	st := m.Stats()
	if st.LPT.Misses != 1 || st.LPT.Hits != 0 {
		t.Errorf("after first car: misses=%d hits=%d", st.LPT.Misses, st.LPT.Hits)
	}
	// Second car: hit, no further split.
	if _, err := m.Car(l); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.LPT.Misses != 1 || st.LPT.Hits != 1 {
		t.Errorf("after second car: misses=%d hits=%d", st.LPT.Misses, st.LPT.Hits)
	}
	// cdr is also a hit now (split computed both fields).
	cdr, err := m.Cdr(l)
	if err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, cdr); got != "(b c)" {
		t.Errorf("cdr = %s", got)
	}
	st = m.Stats()
	if st.LPT.Misses != 1 || st.LPT.Hits != 2 {
		t.Errorf("after cdr: misses=%d hits=%d", st.LPT.Misses, st.LPT.Hits)
	}
}

func TestCarOfAtomFails(t *testing.T) {
	m := newM(t, Config{LPTSize: 16})
	if _, err := m.Car(Value{Kind: VAtom}); err == nil {
		t.Error("car of atom should fail")
	}
	if _, err := m.Cdr(NilValue); err == nil {
		t.Error("cdr of nil should fail")
	}
	if _, err := m.Car(Value{Kind: VList, ID: 7}); err == nil {
		t.Error("car of stale identifier should fail")
	}
}

func TestConsIsLPTOnly(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	a := readList(t, m, "(a)")
	b := readList(t, m, "(b)")
	heapAllocs := m.Heap().Allocs()
	v, err := m.Cons(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Heap().Allocs() != heapAllocs {
		t.Error("cons touched the heap; it must be LPT endo-structure only")
	}
	if got := valueStr(t, m, v); got != "((a) b)" {
		t.Errorf("cons = %s", got)
	}
	st := m.Stats()
	if st.HeapMerges != 0 {
		t.Errorf("HeapMerges = %d", st.HeapMerges)
	}
}

func TestFig49Example(t *testing.T) {
	// The worked example of §4.3.2.4:
	// (cons [cons (car L1) (cdr L2)] (car L2)) over two read-in lists.
	m := newM(t, Config{LPTSize: 16})
	l1 := readList(t, m, "(p q)")
	l2 := readList(t, m, "(r s)")
	if m.InUse() != 2 {
		t.Fatalf("after reads: InUse = %d", m.InUse())
	}
	carL1, err := m.Car(l1) // splits L1 -> 2 new entries? car is atom p here
	if err != nil {
		t.Fatal(err)
	}
	cdrL2, err := m.Cdr(l2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := m.Cons(carL1, cdrL2)
	if err != nil {
		t.Fatal(err)
	}
	carL2, err := m.Car(l2) // hit: already split
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Cons(c1, carL2)
	if err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, res); got != "(p (s) r)" {
		// (cons (cons p (s)) r) = ((p s) . r)? car=cons(p,(s)) = (p s);
		// result = cons((p s), r) = ((p s) . r)
		if got != "((p s) . r)" {
			t.Errorf("result = %s", got)
		}
	}
	st := m.Stats()
	// Exactly two heap splits (L1 and L2), as in the thesis: "to do 3 list
	// accesses only 2 accesses of the actual list storage were necessary".
	if st.HeapSplits != 2 {
		t.Errorf("HeapSplits = %d, want 2", st.HeapSplits)
	}
	if st.LPT.Hits != 1 {
		t.Errorf("Hits = %d, want 1 (the second access to L2)", st.LPT.Hits)
	}
}

func TestReleaseFreesEntries(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	v := readList(t, m, "(a b)")
	if m.InUse() != 1 {
		t.Fatalf("InUse = %d", m.InUse())
	}
	m.Release(v)
	if m.InUse() != 0 {
		t.Errorf("InUse after release = %d", m.InUse())
	}
	st := m.Stats()
	if st.LPT.Frees != 1 {
		t.Errorf("Frees = %d", st.LPT.Frees)
	}
}

func TestLazyChildDecrement(t *testing.T) {
	m := newM(t, Config{LPTSize: 64, Decrement: LazyDecrement})
	l := readList(t, m, "(a b c)")
	cdr, err := m.Cdr(l) // split: creates child entry for (b c)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(cdr) // EP drops its hold; child still referenced by parent field
	childID := cdr.ID
	if !m.lpt.valid(childID) {
		t.Fatal("child should survive while parent references it")
	}
	m.Release(l) // parent dies; child decrement is DEFERRED (lazy)
	if m.lpt.valid(childID) {
		// With lazy decrement the child's count is still 1 until the
		// parent's entry is reallocated.
		t.Log("child freed eagerly?") // not fatal: depends on policy
	}
	inUseBefore := m.InUse()
	// Allocating a new entry reuses the parent slot, decrementing the
	// stale children, which frees the child.
	readList(t, m, "(fresh)")
	if m.lpt.valid(childID) {
		t.Error("child should be freed after parent's slot is reused")
	}
	_ = inUseBefore
}

func TestRecursiveDecrementFreesImmediately(t *testing.T) {
	m := newM(t, Config{LPTSize: 64, Decrement: RecursiveDecrement})
	l := readList(t, m, "(a b c)")
	cdr, err := m.Cdr(l)
	if err != nil {
		t.Fatal(err)
	}
	m.Release(cdr)
	childID := cdr.ID
	m.Release(l)
	if m.lpt.valid(childID) {
		t.Error("recursive policy should cascade the free immediately")
	}
	if m.InUse() != 0 {
		t.Errorf("InUse = %d, want 0", m.InUse())
	}
}

func TestRplacaRplacd(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	l := readList(t, m, "(a b)")
	z := Value{Kind: VAtom, Atom: m.Heap().Atoms().Intern(sexpr.Symbol("z"))}
	if err := m.Rplaca(l, z); err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, l); got != "(z b)" {
		t.Errorf("after rplaca: %s", got)
	}
	tail := readList(t, m, "(q r)")
	if err := m.Rplacd(l, tail); err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, l); got != "(z q r)" {
		t.Errorf("after rplacd: %s", got)
	}
	if err := m.Rplaca(z, z); err == nil {
		t.Error("rplaca of atom should fail")
	}
}

func TestRplacReferenceCounts(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	l := readList(t, m, "(a b)")
	old := readList(t, m, "(old)")
	if err := m.Rplaca(l, old); err != nil { // l's car field now references old
		t.Fatal(err)
	}
	m.Release(old) // EP hold gone; survives via l's field
	oldID := old.ID
	if !m.lpt.valid(oldID) {
		t.Fatal("old should survive via parent field")
	}
	nw := readList(t, m, "(new)")
	if err := m.Rplaca(l, nw); err != nil { // displaces old: last ref gone
		t.Fatal(err)
	}
	if m.lpt.valid(oldID) {
		t.Error("displaced rplaca target should be freed")
	}
}

func TestCopyIsIndependent(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	orig := readList(t, m, "(a b)")
	cp, err := m.Copy(orig)
	if err != nil {
		t.Fatal(err)
	}
	z := Value{Kind: VAtom, Atom: m.Heap().Atoms().Intern(sexpr.Symbol("z"))}
	if err := m.Rplaca(cp, z); err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, orig); got != "(a b)" {
		t.Errorf("original damaged by copy mutation: %s", got)
	}
	if got := valueStr(t, m, cp); got != "(z b)" {
		t.Errorf("copy = %s", got)
	}
}

func TestDrainHeapFrees(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	v := readList(t, m, "(a b c d e)")
	used := m.Heap().Capacity() - m.Heap().FreeCells()
	if used != 5 {
		t.Fatalf("heap cells used = %d", used)
	}
	m.Release(v)
	freed := m.DrainHeapFrees()
	if freed != 5 {
		t.Errorf("DrainHeapFrees = %d, want 5", freed)
	}
	if m.Heap().FreeCells() != m.Heap().Capacity() {
		t.Error("heap not fully reclaimed")
	}
}

func TestPeakAndOccupancy(t *testing.T) {
	m := newM(t, Config{LPTSize: 64})
	var held []Value
	for i := 0; i < 10; i++ {
		held = append(held, readList(t, m, "(x y)"))
	}
	if m.PeakInUse() != 10 {
		t.Errorf("PeakInUse = %d", m.PeakInUse())
	}
	for _, v := range held {
		m.Release(v)
	}
	if m.PeakInUse() != 10 {
		t.Errorf("peak should persist, got %d", m.PeakInUse())
	}
	if m.InUse() != 0 {
		t.Errorf("InUse = %d", m.InUse())
	}
	if m.AvgOccupancy() <= 0 || m.AvgOccupancy() > 10 {
		t.Errorf("AvgOccupancy = %v", m.AvgOccupancy())
	}
}

// TestQuickAllocReleaseInvariants drives random ReadList/Release sequences
// and checks the structural invariants with testing/quick: occupancy never
// exceeds the table, the peak is monotone and an upper bound on live use,
// and gets/frees stay consistent with live occupancy.
func TestQuickAllocReleaseInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		m := NewMachine(Config{LPTSize: 32})
		var held []Value
		peakSeen := 0
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				v, err := m.ReadList(mustParseHelper("(q r)"), NilValue)
				if err != nil {
					return false
				}
				if v.Kind == VList {
					held = append(held, v)
				}
			case 2:
				if len(held) > 0 {
					m.Release(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			if m.InUse() > m.lpt.size() {
				t.Logf("occupancy %d exceeds table %d", m.InUse(), m.lpt.size())
				return false
			}
			if m.PeakInUse() < peakSeen {
				t.Log("peak decreased")
				return false
			}
			peakSeen = m.PeakInUse()
			if m.InUse() > m.PeakInUse() {
				t.Log("in-use exceeds peak")
				return false
			}
		}
		st := m.Stats()
		live := int64(m.InUse())
		if st.LPT.Gets-st.LPT.Frees < live {
			t.Logf("gets %d - frees %d < live %d", st.LPT.Gets, st.LPT.Frees, live)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
