package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/sexpr"
)

// This file renders machine values to printed text directly from the LPT
// and heap, without materialising an intermediate s-expression tree.
// Trace collection prints every primitive's operands, so on traced runs
// the renderer is the hottest observability path: decoding via ValueOf
// costs two allocations per list cell per event (the Cons node, then the
// string builder's copy), where AppendTextOf costs none beyond the
// caller's reusable buffer.

// AppendTextOf appends the printed representation of v to buf and
// returns the extended buffer. The text is byte-identical to
// sexpr.String applied to ValueOf(v) — the differential trace tests rely
// on that. Like ValueOf, it does not disturb reference counts.
func (m *Machine) AppendTextOf(buf []byte, v Value) ([]byte, error) {
	c, err := m.textCursorOf(v)
	if err != nil {
		return nil, err
	}
	return m.appendCursor(buf, c)
}

// textCursor is a read-only rendering position: either an LPT entry
// (isWord false) or a raw heap word (atom, nil or cell).
type textCursor struct {
	isWord bool
	id     EntryID
	w      heap.Word
}

func (m *Machine) textCursorOf(v Value) (textCursor, error) {
	switch v.Kind {
	case VNil:
		return textCursor{isWord: true, w: heap.NilWord}, nil
	case VAtom:
		return textCursor{isWord: true, w: v.Atom}, nil
	case VHeap:
		return textCursor{isWord: true, w: v.Addr}, nil
	case VList:
		if !m.lpt.valid(v.ID) {
			return textCursor{}, fmt.Errorf("core: stale identifier %d", v.ID)
		}
		return textCursor{id: v.ID}, nil
	}
	return textCursor{}, fmt.Errorf("core: bad value kind %d", v.Kind)
}

// resolveCursor reduces c to either a cell position (isCell true) or an
// atom/nil word. Unexpanded entries forward to their heap object.
func (m *Machine) resolveCursor(c textCursor) (textCursor, bool, error) {
	if !c.isWord {
		if !m.lpt.valid(c.id) {
			return textCursor{}, false, fmt.Errorf("core: stale identifier %d", c.id)
		}
		e := m.lpt.get(c.id)
		if !e.hasAddr {
			return c, true, nil
		}
		c = textCursor{isWord: true, w: e.addr}
	}
	return c, c.w.Tag == heap.TagCell, nil
}

// cursorChildren returns the car and cdr positions of a resolved cell.
func (m *Machine) cursorChildren(c textCursor) (car, cdr textCursor, err error) {
	if !c.isWord {
		e := m.lpt.get(c.id)
		return childCursor(e.car), childCursor(e.cdr), nil
	}
	cw, err := m.heap.Car(c.w)
	if err != nil {
		return textCursor{}, textCursor{}, err
	}
	dw, err := m.heap.Cdr(c.w)
	if err != nil {
		return textCursor{}, textCursor{}, err
	}
	return textCursor{isWord: true, w: cw}, textCursor{isWord: true, w: dw}, nil
}

func childCursor(c child) textCursor {
	switch c.kind {
	case childAtom:
		return textCursor{isWord: true, w: c.atom}
	case childEntry:
		return textCursor{id: c.id}
	default:
		return textCursor{isWord: true, w: heap.NilWord}
	}
}

// appendCursor mirrors sexpr's Cell printer: proper lists render as
// "(a b c)", a non-list cdr as "(a . b)".
func (m *Machine) appendCursor(buf []byte, c textCursor) ([]byte, error) {
	rc, isCell, err := m.resolveCursor(c)
	if err != nil {
		return nil, err
	}
	if !isCell {
		return m.appendAtomText(buf, rc.w)
	}
	buf = append(buf, '(')
	for {
		car, cdr, err := m.cursorChildren(rc)
		if err != nil {
			return nil, err
		}
		if buf, err = m.appendCursor(buf, car); err != nil {
			return nil, err
		}
		rcdr, cdrIsCell, err := m.resolveCursor(cdr)
		if err != nil {
			return nil, err
		}
		if cdrIsCell {
			buf = append(buf, ' ')
			rc = rcdr
			continue
		}
		if rcdr.w.Tag == heap.TagNil {
			return append(buf, ')'), nil
		}
		buf = append(buf, ' ', '.', ' ')
		if buf, err = m.appendAtomText(buf, rcdr.w); err != nil {
			return nil, err
		}
		return append(buf, ')'), nil
	}
}

// appendAtomText appends the printed form of an atom or nil word. The
// rendered text is cached per atom-table index; the table only grows
// between machine Resets, so the cache cannot go stale.
func (m *Machine) appendAtomText(buf []byte, w heap.Word) ([]byte, error) {
	if w.Tag == heap.TagNil {
		return append(buf, "nil"...), nil
	}
	i := int(w.Val)
	if i >= 0 && i < len(m.atomText) && m.atomText[i] != "" {
		return append(buf, m.atomText[i]...), nil
	}
	sv, err := m.heap.Atoms().Value(w)
	if err != nil {
		return nil, err
	}
	s := sexpr.String(sv)
	if i >= 0 {
		for len(m.atomText) <= i {
			m.atomText = append(m.atomText, "")
		}
		m.atomText[i] = s
	}
	return append(buf, s...), nil
}
