package core

import (
	"math/rand"
	"testing"

	"repro/internal/sexpr"
)

// TestDifferentialAgainstSexpr drives random operation sequences through a
// SMALL machine and, in lockstep, through plain s-expression semantics.
// After every operation the machine's decoded view of every live handle
// must equal the reference value. This exercises split, hit, cons
// endo-structure, rplac field maintenance, compression under pressure and
// lazy reclamation together, against an oracle.
func TestDifferentialAgainstSexpr(t *testing.T) {
	type pair struct {
		mv  Value       // machine value
		ref sexpr.Value // reference value (aliased, so rplac mutations show)
	}
	symbols := []sexpr.Value{
		sexpr.Symbol("a"), sexpr.Symbol("b"), sexpr.Symbol("c"), sexpr.Int(7),
	}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		// Small tables force compression and overflow paths on some seeds.
		tableSize := []int{16, 48, 256}[r.Intn(3)]
		m := NewMachine(Config{LPTSize: tableSize, Policy: CompressionPolicy(r.Intn(2))})
		var live []pair

		randomSexpr := func(depth int) sexpr.Value {
			var gen func(d int) sexpr.Value
			gen = func(d int) sexpr.Value {
				if d <= 0 || r.Intn(3) == 0 {
					return symbols[r.Intn(len(symbols))]
				}
				n := 1 + r.Intn(3)
				items := make([]sexpr.Value, n)
				for i := range items {
					items[i] = gen(d - 1)
				}
				return sexpr.List(items...)
			}
			return gen(depth)
		}

		check := func(op string, step int) {
			for i, p := range live {
				got, err := m.ValueOf(p.mv)
				if err != nil {
					t.Fatalf("seed %d step %d after %s: ValueOf(live[%d]): %v",
						seed, step, op, i, err)
				}
				if !sexpr.Equal(got, p.ref) {
					t.Fatalf("seed %d step %d after %s: live[%d] = %s, want %s",
						seed, step, op, i, sexpr.String(got), sexpr.String(p.ref))
				}
			}
		}

		pick := func() pair { return live[r.Intn(len(live))] }

		for step := 0; step < 300; step++ {
			if m.OverflowMode() {
				// Overflow-mode heap aliasing is exercised elsewhere; the
				// oracle cannot track raw heap sharing faithfully.
				break
			}
			op := r.Intn(6)
			if len(live) == 0 {
				op = 0
			}
			switch op {
			case 0: // readlist
				sv := randomSexpr(3)
				mv, err := m.ReadList(sv, NilValue)
				if err != nil {
					t.Fatalf("seed %d step %d: ReadList: %v", seed, step, err)
				}
				// ReadList copies into the heap: mutations of the machine
				// value must not affect the source, so deep-copy the ref.
				live = append(live, pair{mv, sexpr.Copy(sv)})
				check("readlist", step)
			case 1: // car
				p := pick()
				if p.mv.Kind != VList {
					continue
				}
				mv, err := m.Car(p.mv)
				if err != nil {
					if m.OverflowMode() {
						break
					}
					t.Fatalf("seed %d step %d: Car: %v", seed, step, err)
				}
				rv := sexpr.Car(p.ref)
				if mv.Kind == VList {
					live = append(live, pair{mv, rv})
				} else {
					// atoms: verify directly and drop
					got, err := m.ValueOf(mv)
					if err != nil || !sexpr.Equal(got, rv) {
						t.Fatalf("seed %d step %d: car atom = %s, want %s (%v)",
							seed, step, sexpr.String(got), sexpr.String(rv), err)
					}
				}
				check("car", step)
			case 2: // cdr
				p := pick()
				if p.mv.Kind != VList {
					continue
				}
				mv, err := m.Cdr(p.mv)
				if err != nil {
					if m.OverflowMode() {
						break
					}
					t.Fatalf("seed %d step %d: Cdr: %v", seed, step, err)
				}
				rv := sexpr.Cdr(p.ref)
				if mv.Kind == VList {
					live = append(live, pair{mv, rv})
				}
				check("cdr", step)
			case 3: // cons
				a, b := pick(), pick()
				mv, err := m.Cons(a.mv, b.mv)
				if err != nil {
					t.Fatalf("seed %d step %d: Cons: %v", seed, step, err)
				}
				if mv.Kind == VList {
					live = append(live, pair{mv, sexpr.Cons(a.ref, b.ref)})
				}
				check("cons", step)
			case 4: // rplaca / rplacd with an atom (keeps the oracle simple:
				// no aliased sublist graphs beyond what cons created)
				p := pick()
				if p.mv.Kind != VList {
					continue
				}
				atom := symbols[r.Intn(len(symbols))]
				av := Value{Kind: VAtom, Atom: m.Heap().Atoms().Intern(atom)}
				cell, ok := p.ref.(*sexpr.Cell)
				if !ok {
					continue
				}
				if r.Intn(2) == 0 {
					if err := m.Rplaca(p.mv, av); err != nil {
						if m.OverflowMode() {
							break
						}
						t.Fatalf("seed %d step %d: Rplaca: %v", seed, step, err)
					}
					cell.Car = atom
				} else {
					if err := m.Rplacd(p.mv, av); err != nil {
						if m.OverflowMode() {
							break
						}
						t.Fatalf("seed %d step %d: Rplacd: %v", seed, step, err)
					}
					cell.Cdr = atom
				}
				check("rplac", step)
			case 5: // release one handle
				i := r.Intn(len(live))
				m.Release(live[i].mv)
				live = append(live[:i], live[i+1:]...)
				check("release", step)
			}
		}
	}
}

// TestDifferentialSharingThroughMachine verifies aliasing semantics: a
// rplaca through one handle is visible through another handle that shares
// the same cell, exactly as with raw cells.
func TestDifferentialSharingThroughMachine(t *testing.T) {
	m := NewMachine(Config{LPTSize: 64})
	l := readList(t, m, "((x) tail)")
	sub, err := m.Car(l) // the (x) sublist, shared with l
	if err != nil {
		t.Fatal(err)
	}
	z := Value{Kind: VAtom, Atom: m.Heap().Atoms().Intern(sexpr.Symbol("z"))}
	if err := m.Rplaca(sub, z); err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, l); got != "((z) tail)" {
		t.Errorf("mutation through shared handle invisible: %s", got)
	}
	// cons sharing: both conses see the same mutated sublist.
	c1, err := m.Cons(sub, NilValue)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Cons(sub, c1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Rplaca(sub, Value{Kind: VAtom, Atom: m.Heap().Atoms().Intern(sexpr.Symbol("q"))}); err != nil {
		t.Fatal(err)
	}
	if got := valueStr(t, m, c2); got != "((q) (q))" {
		t.Errorf("cons sharing broken: %s", got)
	}
}

// TestRefcountAudit checks the bookkeeping invariant after a workload:
// every in-use entry's reference count equals the number of live internal
// (car/cdr field) references plus the EP holds the test still owns.
func TestRefcountAudit(t *testing.T) {
	m := NewMachine(Config{LPTSize: 128})
	r := rand.New(rand.NewSource(99))
	var held []Value
	for step := 0; step < 400; step++ {
		switch r.Intn(5) {
		case 0, 1:
			v := readList(t, m, "(a (b) c)")
			held = append(held, v)
		case 2:
			if len(held) >= 2 {
				v, err := m.Cons(held[r.Intn(len(held))], held[r.Intn(len(held))])
				if err != nil {
					t.Fatal(err)
				}
				held = append(held, v)
			}
		case 3:
			if len(held) > 0 {
				v, err := m.Cdr(held[r.Intn(len(held))])
				if err != nil {
					t.Fatal(err)
				}
				if v.Kind == VList {
					held = append(held, v)
				}
			}
		case 4:
			if len(held) > 0 {
				i := r.Intn(len(held))
				m.Release(held[i])
				held = append(held[:i], held[i+1:]...)
			}
		}
	}
	// Audit: internal references per entry.
	internal := make(map[EntryID]int32)
	for id := EntryID(1); int(id) <= m.lpt.size(); id++ {
		if !m.lpt.valid(id) {
			continue
		}
		e := m.lpt.get(id)
		if e.car.kind == childEntry {
			internal[e.car.id]++
		}
		if e.cdr.kind == childEntry {
			internal[e.cdr.id]++
		}
	}
	eph := make(map[EntryID]int32)
	for _, v := range held {
		if v.Kind == VList {
			eph[v.ID]++
		}
	}
	for id := EntryID(1); int(id) <= m.lpt.size(); id++ {
		if !m.lpt.valid(id) {
			continue
		}
		e := m.lpt.get(id)
		want := internal[id] + eph[id]
		// Lazy decrement: freed entries retain stale child references
		// until their slot is reused, so live counts may exceed the audit
		// by the number of stale references. Count those too.
		stale := int32(0)
		for sid := EntryID(1); int(sid) <= m.lpt.size(); sid++ {
			se := m.lpt.get(sid)
			if se.inUse || (se.car.kind == 0 && se.cdr.kind == 0) {
				continue
			}
			if se.car.kind == childEntry && se.car.id == id {
				stale++
			}
			if se.cdr.kind == childEntry && se.cdr.id == id {
				stale++
			}
		}
		if e.ref != want+stale {
			t.Errorf("entry %d: ref=%d, want internal %d + EP %d + stale %d",
				id, e.ref, internal[id], eph[id], stale)
		}
	}
}
