package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/sexpr"
)

// ValueKind discriminates the values the LP returns to the EP.
type ValueKind uint8

const (
	// VNil is the nil object.
	VNil ValueKind = iota
	// VAtom is an atom, passed with its type tag.
	VAtom
	// VList is a list object named by an LPT identifier.
	VList
	// VHeap is an overflow-mode "large identifier": a raw heap address
	// used while the LPT is bypassed (§4.3.2.3).
	VHeap
)

// Value is an EP-visible datum.
type Value struct {
	Kind ValueKind
	Atom heap.Word // VAtom
	ID   EntryID   // VList
	Addr heap.Word // VHeap
}

// NilValue is the nil Value.
var NilValue = Value{Kind: VNil}

// MachineStats aggregates the counters reported in Chapter 5.
type MachineStats struct {
	LPT        LPTStats
	HeapSplits int64
	HeapMerges int64
	ReadLists  int64
	// StackRefEvents counts every EP-side retain/release — the EP–LP
	// message traffic of the unsplit design ("Then" in Table 5.3).
	StackRefEvents int64
	// EPLPMessages counts the messages actually crossing the EP–LP bus
	// under split stack counts ("Now" in Table 5.3). Without split counts
	// it equals StackRefEvents.
	EPLPMessages int64
	// EPRefops counts count arithmetic performed in the EP-side table.
	EPRefops   int64
	MaxRef     int32
	MaxEPCount int32
	// OverflowOps counts operations executed in overflow mode; LeakedConses
	// counts overflow-mode allocations the LPT never tracked.
	OverflowOps  int64
	LeakedConses int64
	ModeSwitches int64
}

// Config parameterises a Machine.
type Config struct {
	// LPTSize is the number of LPT entries (thesis sweeps 40–4096).
	LPTSize int
	// HeapCells sizes the two-pointer heap below the heap controller.
	HeapCells int
	// Policy selects pseudo-overflow compression (default CompressOne).
	Policy CompressionPolicy
	// Decrement selects lazy (SMALL) or recursive child decrement.
	Decrement DecrementPolicy
	// SplitStackCounts enables the Table 5.3 optimisation: stack
	// references are counted in an EP-side table and only zero-crossings
	// are signalled to the LP.
	SplitStackCounts bool
	// FreeList selects the freed-entry reuse discipline (default
	// FreeStack, the SMALL design choice).
	FreeList FreeDiscipline
	// Timing, when non-nil, drives the Fig 4.10–4.13 overlap model.
	Timing *TimingParams
}

// Machine is one SMALL node: LPT + heap controller + the EP-side
// reference bookkeeping. The EP's environment and control stack live with
// the client (the simulator or an application); the machine exposes the
// LP request interface of §4.3.2.2 plus Retain/Release for binding
// lifetime management.
type Machine struct {
	lpt    *lpt
	heap   *heap.TwoPtr
	policy CompressionPolicy
	split  bool
	// epCounts is the EP-side stack reference count table of §5.3.3,
	// indexed by entry identifier (slice rather than map: Retain/Release
	// run once per simulated binding event, so count arithmetic must not
	// allocate or hash).
	epCounts            []int32
	overflow            bool
	outstandingHeapVals int
	stats               MachineStats
	tl                  *timeline
	// atomText caches printed atom texts by atom-table index for
	// AppendTextOf; Reset empties it alongside the atom table.
	atomText []string
}

// NewMachine builds a SMALL machine from cfg, applying thesis-scale
// defaults for unset fields (2K LPT entries, §5.4).
func NewMachine(cfg Config) *Machine {
	m := &Machine{}
	m.Reset(cfg)
	return m
}

// Reset reinitialises the machine for a fresh run under cfg, reusing the
// LPT entry array, EP count table, and heap cell storage already
// allocated when their capacities suffice. A reset machine behaves
// identically to NewMachine(cfg); the experiment sweeps pool machines
// through sim.Run so repeated simulation points stop hammering the
// allocator with multi-megabyte table and heap arrays.
func (m *Machine) Reset(cfg Config) {
	if cfg.LPTSize <= 0 {
		cfg.LPTSize = 2048
	}
	if cfg.HeapCells <= 0 {
		cfg.HeapCells = 1 << 18
	}
	if m.lpt == nil {
		m.lpt = newLPT(cfg.LPTSize, cfg.Decrement, cfg.FreeList)
	} else {
		m.lpt.reset(cfg.LPTSize, cfg.Decrement, cfg.FreeList)
	}
	if m.heap == nil {
		m.heap = heap.NewTwoPtr(cfg.HeapCells)
	} else {
		m.heap.Reset(cfg.HeapCells)
	}
	m.policy = cfg.Policy
	m.split = cfg.SplitStackCounts
	if m.split {
		if cap(m.epCounts) >= cfg.LPTSize+1 {
			m.epCounts = m.epCounts[:cfg.LPTSize+1]
			clear(m.epCounts)
		} else {
			m.epCounts = make([]int32, cfg.LPTSize+1)
		}
	} else {
		m.epCounts = nil
	}
	m.overflow = false
	m.outstandingHeapVals = 0
	m.stats = MachineStats{}
	m.atomText = m.atomText[:0]
	m.tl = nil
	if cfg.Timing != nil {
		m.tl = newTimeline(*cfg.Timing)
	}
}

// Heap exposes the underlying heap (read-only use intended).
func (m *Machine) Heap() *heap.TwoPtr { return m.heap }

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() MachineStats {
	s := m.stats
	s.LPT = m.lpt.stats
	if !m.split {
		s.EPLPMessages = s.StackRefEvents
	}
	return s
}

// InUse returns the number of live LPT entries.
func (m *Machine) InUse() int { return m.lpt.inUse }

// PeakInUse returns the LPT occupancy high-water mark (Fig 5.1's y-axis).
func (m *Machine) PeakInUse() int { return m.lpt.peak }

// AvgOccupancy returns the mean LPT occupancy sampled at each allocation
// (Fig 5.3's y-axis).
func (m *Machine) AvgOccupancy() float64 {
	if m.lpt.occupancySamples == 0 {
		return 0
	}
	return float64(m.lpt.occupancySum) / float64(m.lpt.occupancySamples)
}

// OccupancySums returns the integer occupancy integral behind
// AvgOccupancy: the sum of LPT occupancy sampled at each allocation and
// the number of samples. Exposing the raw sums (rather than only their
// quotient) lets sharded simulation runs merge occupancy exactly in
// integer arithmetic — float averages of averages are not associative.
func (m *Machine) OccupancySums() (sum, samples int64) {
	return m.lpt.occupancySum, m.lpt.occupancySamples
}

// OverflowMode reports whether the machine is in degraded overflow mode.
func (m *Machine) OverflowMode() bool { return m.overflow }

// DrainHeapFrees services the heap controller's free queue, reclaiming
// the heap space behind released list objects. Returns cells freed.
func (m *Machine) DrainHeapFrees() int {
	freed := 0
	for _, w := range m.lpt.pendingHeapFrees {
		freed += m.heap.FreeTree(w)
	}
	m.lpt.pendingHeapFrees = m.lpt.pendingHeapFrees[:0]
	return freed
}

// trackRef records refcount extrema for Table 5.3.
func (m *Machine) trackRef(id EntryID) {
	if r := m.lpt.get(id).ref; r > m.stats.MaxRef {
		m.stats.MaxRef = r
	}
}

// retained marks a freshly returned list value as held by the EP.
func (m *Machine) retained(id EntryID) Value {
	v := Value{Kind: VList, ID: id}
	m.Retain(v)
	return v
}

// Retain records an EP-side reference to v: binding it to a variable,
// pushing it on the control stack, or duplicating it.
func (m *Machine) Retain(v Value) {
	switch v.Kind {
	case VList:
		m.stats.StackRefEvents++
		if m.split {
			m.stats.EPRefops++
			c := m.epCounts[v.ID] + 1
			m.epCounts[v.ID] = c
			if c > m.stats.MaxEPCount {
				m.stats.MaxEPCount = c
			}
			if c == 1 {
				// zero-crossing: tell the LP to set the stack bit
				m.stats.EPLPMessages++
				m.lpt.get(v.ID).stackBit = true
			}
		} else {
			m.lpt.incRef(v.ID)
			m.trackRef(v.ID)
		}
	case VHeap:
		m.outstandingHeapVals++
	}
}

// Release records the end of an EP-side reference: a binding popped on
// function return, a temporary consumed.
func (m *Machine) Release(v Value) {
	switch v.Kind {
	case VList:
		m.stats.StackRefEvents++
		if m.split {
			m.stats.EPRefops++
			c := m.epCounts[v.ID] - 1
			if c <= 0 {
				m.epCounts[v.ID] = 0
				// zero-crossing: clear the stack bit; the entry dies if no
				// internal references remain.
				m.stats.EPLPMessages++
				e := m.lpt.get(v.ID)
				e.stackBit = false
				if e.inUse && e.ref <= 0 {
					m.lpt.freeEntry(v.ID)
				}
			} else {
				m.epCounts[v.ID] = c
			}
		} else {
			m.lpt.decRef(v.ID)
		}
	case VHeap:
		m.outstandingHeapVals--
		if m.outstandingHeapVals <= 0 && m.overflow {
			// All large identifiers returned: switch back to fast mode
			// (§4.3.2.3).
			m.overflow = false
			m.outstandingHeapVals = 0
			m.stats.ModeSwitches++
		}
	}
}

// wordToValue wraps a heap word as an EP value without creating entries.
func wordToValue(w heap.Word) Value {
	switch w.Tag {
	case heap.TagNil:
		return NilValue
	case heap.TagAtom:
		return Value{Kind: VAtom, Atom: w}
	default:
		return Value{Kind: VHeap, Addr: w}
	}
}

// enterOverflow switches to overflow mode.
func (m *Machine) enterOverflow() {
	if !m.overflow {
		m.overflow = true
		m.stats.ModeSwitches++
	}
}

// ReadList reads list data into the heap and returns its identifier
// (§4.3.2.2.1). prev, when a list, is the object previously bound to the
// variable being read into; its reference is released first.
func (m *Machine) ReadList(v sexpr.Value, prev Value) (Value, error) {
	if prev.Kind == VList || prev.Kind == VHeap {
		m.Release(prev)
	}
	m.stats.ReadLists++
	w, err := m.heap.Build(v)
	if err != nil {
		return NilValue, err
	}
	m.timeReadList()
	if w.Tag != heap.TagCell {
		return wordToValue(w), nil
	}
	id, err := m.allocEntry()
	if err != nil {
		m.enterOverflow()
		m.stats.OverflowOps++
		hv := Value{Kind: VHeap, Addr: w}
		m.Retain(hv)
		return hv, nil
	}
	e := m.lpt.get(id)
	e.addr = w
	e.hasAddr = true
	return m.retained(id), nil
}

// childValue converts a child field into an EP value, retaining entries.
func (m *Machine) childValue(c child) Value {
	switch c.kind {
	case childNil:
		return NilValue
	case childAtom:
		return Value{Kind: VAtom, Atom: c.atom}
	case childEntry:
		return m.retained(c.id)
	default:
		return NilValue
	}
}

// wordToChild wraps a heap word as a child field, creating an entry for
// cell words. The new entry's count reflects the parent's field reference.
func (m *Machine) wordToChild(w heap.Word) (child, error) {
	switch w.Tag {
	case heap.TagNil:
		return child{kind: childNil}, nil
	case heap.TagAtom:
		return child{kind: childAtom, atom: w}, nil
	default:
		id, err := m.allocEntry()
		if err != nil {
			return child{}, err
		}
		e := m.lpt.get(id)
		e.addr = w
		e.hasAddr = true
		e.ref = 1 // the parent's field
		m.lpt.stats.Refops++
		return child{kind: childEntry, id: id}, nil
	}
}

// discardChildEntry rolls back a child entry created during a failed
// expand: the entry is dropped without queueing its heap object, which
// still belongs to the intact parent structure.
func (m *Machine) discardChildEntry(c child) {
	if c.kind != childEntry {
		return
	}
	ce := m.lpt.get(c.id)
	ce.hasAddr = false
	ce.ref = 0
	m.lpt.freeEntry(c.id)
}

// expand splits the heap object behind an unexpanded entry, filling its
// car and cdr fields (Figs 4.4/4.5). The split consumes the parent's heap
// cell. If the LPT cannot hold the child entries, the parent is left
// untouched and ErrLPTFull is returned so the caller can degrade to
// overflow mode.
func (m *Machine) expand(id EntryID) error {
	e := m.lpt.get(id)
	if !e.hasAddr {
		return fmt.Errorf("core: entry %d has neither children nor address", id)
	}
	addr := e.addr
	carW, err := m.heap.Car(addr)
	if err != nil {
		return err
	}
	cdrW, err := m.heap.Cdr(addr)
	if err != nil {
		return err
	}
	car, err := m.wordToChild(carW)
	if err != nil {
		return err
	}
	cdr, err := m.wordToChild(cdrW)
	if err != nil {
		m.discardChildEntry(car)
		return err
	}
	// Commit: the parent cell is consumed by the split (§4.3.3.2).
	e = m.lpt.get(id) // allocEntry above may have run compression
	e.hasAddr = false
	e.car, e.cdr = car, cdr
	if err := m.heap.FreeCell(addr.Val); err != nil {
		return err
	}
	m.stats.HeapSplits++
	m.lpt.stats.Misses++
	return nil
}

// access implements car and cdr (§4.3.2.2.2).
func (m *Machine) access(v Value, wantCar bool) (Value, error) {
	opName := "cdr"
	if wantCar {
		opName = "car"
	}
	switch v.Kind {
	case VHeap:
		// Overflow-mode access: straight heap read, no caching.
		m.stats.OverflowOps++
		var w heap.Word
		var err error
		if wantCar {
			w, err = m.heap.Car(v.Addr)
		} else {
			w, err = m.heap.Cdr(v.Addr)
		}
		if err != nil {
			return NilValue, err
		}
		out := wordToValue(w)
		m.Retain(out)
		m.timeAccess(false)
		return out, nil
	case VList:
		if !m.lpt.valid(v.ID) {
			return NilValue, fmt.Errorf("core: %s of stale identifier %d", opName, v.ID)
		}
		e := m.lpt.get(v.ID)
		field := &e.cdr
		if wantCar {
			field = &e.car
		}
		if field.kind == childUnset {
			if err := m.expand(v.ID); err != nil {
				if err != ErrLPTFull {
					return NilValue, err
				}
				// No room for child entries: the parent object is intact;
				// serve the access straight from the heap in overflow
				// mode, uncached (§4.3.2.3).
				m.enterOverflow()
				m.stats.OverflowOps++
				var w heap.Word
				var herr error
				if wantCar {
					w, herr = m.heap.Car(e.addr)
				} else {
					w, herr = m.heap.Cdr(e.addr)
				}
				if herr != nil {
					return NilValue, herr
				}
				out := wordToValue(w)
				m.Retain(out)
				return out, nil
			}
			m.timeAccess(false)
		} else {
			m.lpt.stats.Hits++
			m.timeAccess(true)
		}
		e = m.lpt.get(v.ID)
		if wantCar {
			return m.childValue(e.car), nil
		}
		return m.childValue(e.cdr), nil
	case VNil, VAtom:
		return NilValue, fmt.Errorf("core: %s of non-list", opName)
	}
	return NilValue, fmt.Errorf("core: bad value kind %d", v.Kind)
}

// Car returns the car of v (§4.3.2.2.2).
func (m *Machine) Car(v Value) (Value, error) { return m.access(v, true) }

// Cdr returns the cdr of v.
func (m *Machine) Cdr(v Value) (Value, error) { return m.access(v, false) }

// valueToChild converts an EP value into a child field. The field takes
// its own reference on entry values.
func (m *Machine) valueToChild(v Value) (child, error) {
	switch v.Kind {
	case VNil:
		return child{kind: childNil}, nil
	case VAtom:
		return child{kind: childAtom, atom: v.Atom}, nil
	case VList:
		if !m.lpt.valid(v.ID) {
			return child{}, fmt.Errorf("core: stale identifier %d", v.ID)
		}
		m.lpt.incRef(v.ID)
		m.trackRef(v.ID)
		return child{kind: childEntry, id: v.ID}, nil
	case VHeap:
		// Overflow-mode value: store as an opaque atom-like heap pointer
		// is unsound; instead keep it unexpanded by merging later. We
		// materialise a child entry only if the LPT has room.
		id, err := m.allocEntry()
		if err != nil {
			return child{}, err
		}
		e := m.lpt.get(id)
		e.addr = v.Addr
		e.hasAddr = true
		e.ref = 1
		m.lpt.stats.Refops++
		return child{kind: childEntry, id: id}, nil
	}
	return child{}, fmt.Errorf("core: bad value kind %d", v.Kind)
}

// Cons builds a new list object purely in the LPT (§4.3.2.2.4): no heap
// activity occurs; the structure exists as endo-structure until
// compression materialises it.
func (m *Machine) Cons(x, y Value) (Value, error) {
	id, err := m.allocEntry()
	if err != nil {
		// Overflow mode: cons directly in the heap (§4.3.2.3).
		m.enterOverflow()
		return m.overflowCons(x, y)
	}
	car, err := m.valueToChild(x)
	if err != nil {
		m.lpt.get(id).ref = 0
		m.lpt.freeEntry(id)
		if err == ErrLPTFull {
			// No room to track an overflow-mode argument: cons in the heap.
			m.enterOverflow()
			return m.overflowCons(x, y)
		}
		return NilValue, err
	}
	cdr, err := m.valueToChild(y)
	if err != nil {
		m.lpt.decChild(car)
		m.lpt.get(id).ref = 0
		m.lpt.freeEntry(id)
		if err == ErrLPTFull {
			m.enterOverflow()
			return m.overflowCons(x, y)
		}
		return NilValue, err
	}
	e := m.lpt.get(id)
	e.car, e.cdr = car, cdr
	m.timeCons()
	return m.retained(id), nil
}

// overflowCons allocates directly in the heap while the LPT is bypassed.
func (m *Machine) overflowCons(x, y Value) (Value, error) {
	m.stats.OverflowOps++
	m.stats.LeakedConses++
	carW, err := m.valueToWord(x)
	if err != nil {
		return NilValue, err
	}
	cdrW, err := m.valueToWord(y)
	if err != nil {
		return NilValue, err
	}
	w, err := m.heap.Merge(carW, cdrW)
	if err != nil {
		return NilValue, err
	}
	m.stats.HeapMerges++
	out := Value{Kind: VHeap, Addr: w}
	m.Retain(out)
	return out, nil
}

// replace implements rplaca/rplacd (§4.3.2.2.3): the object is split
// first if its fields are not yet computed, then the field is swapped
// with reference count maintenance.
func (m *Machine) replace(x, y Value, replaceCar bool) error {
	if x.Kind == VHeap {
		m.stats.OverflowOps++
		w, err := m.valueToWord(y)
		if err != nil {
			return err
		}
		if replaceCar {
			return m.heap.Rplaca(x.Addr, w)
		}
		return m.heap.Rplacd(x.Addr, w)
	}
	if x.Kind != VList {
		return fmt.Errorf("core: rplac of non-list")
	}
	if !m.lpt.valid(x.ID) {
		return fmt.Errorf("core: rplac of stale identifier %d", x.ID)
	}
	e := m.lpt.get(x.ID)
	if e.car.kind == childUnset && e.cdr.kind == childUnset {
		if err := m.expand(x.ID); err != nil {
			if err == ErrLPTFull {
				m.enterOverflow()
			}
			return err
		}
		e = m.lpt.get(x.ID)
	} else {
		m.lpt.stats.Hits++
	}
	newChild, err := m.valueToChild(y)
	if err != nil {
		if err == ErrLPTFull {
			m.enterOverflow()
		}
		return err
	}
	e = m.lpt.get(x.ID)
	var old child
	if replaceCar {
		old, e.car = e.car, newChild
	} else {
		old, e.cdr = e.cdr, newChild
	}
	m.lpt.decChild(old)
	m.timeRplac()
	return nil
}

// Rplaca replaces the car of x with y.
func (m *Machine) Rplaca(x, y Value) error { return m.replace(x, y, true) }

// Rplacd replaces the cdr of x with y.
func (m *Machine) Rplacd(x, y Value) error { return m.replace(x, y, false) }

// Copy produces an independent copy of v, used by the EP before modifying
// call-by-value parameters (§4.3.1).
func (m *Machine) Copy(v Value) (Value, error) {
	switch v.Kind {
	case VNil, VAtom:
		return v, nil
	}
	sv, err := m.ValueOf(v)
	if err != nil {
		return NilValue, err
	}
	return m.ReadList(sv, NilValue)
}

// valueToWord materialises any EP value as a heap word, writing LPT
// endo-structure back to the heap as needed (used by overflow mode).
func (m *Machine) valueToWord(v Value) (heap.Word, error) {
	switch v.Kind {
	case VNil:
		return heap.NilWord, nil
	case VAtom:
		return v.Atom, nil
	case VHeap:
		return v.Addr, nil
	case VList:
		if !m.lpt.valid(v.ID) {
			return heap.NilWord, fmt.Errorf("core: stale identifier %d", v.ID)
		}
		e := m.lpt.get(v.ID)
		if e.hasAddr {
			return e.addr, nil
		}
		carW, err := m.childToWordDeep(e.car)
		if err != nil {
			return heap.NilWord, err
		}
		cdrW, err := m.childToWordDeep(e.cdr)
		if err != nil {
			return heap.NilWord, err
		}
		w, err := m.heap.Merge(carW, cdrW)
		if err != nil {
			return heap.NilWord, err
		}
		m.stats.HeapMerges++
		return w, nil
	}
	return heap.NilWord, fmt.Errorf("core: bad value kind %d", v.Kind)
}

func (m *Machine) childToWordDeep(c child) (heap.Word, error) {
	switch c.kind {
	case childNil:
		return heap.NilWord, nil
	case childAtom:
		return c.atom, nil
	case childEntry:
		return m.valueToWord(Value{Kind: VList, ID: c.id})
	default:
		return heap.NilWord, fmt.Errorf("core: unset child")
	}
}

// ValueOf decodes an EP value back into an s-expression (testing and
// I/O). It does not disturb reference counts.
func (m *Machine) ValueOf(v Value) (sexpr.Value, error) {
	switch v.Kind {
	case VNil:
		return nil, nil
	case VAtom:
		return m.heap.Atoms().Value(v.Atom)
	case VHeap:
		return m.heap.Decode(v.Addr)
	case VList:
		if !m.lpt.valid(v.ID) {
			return nil, fmt.Errorf("core: stale identifier %d", v.ID)
		}
		e := m.lpt.get(v.ID)
		if e.hasAddr {
			return m.heap.Decode(e.addr)
		}
		car, err := m.childValueOf(e.car)
		if err != nil {
			return nil, err
		}
		cdr, err := m.childValueOf(e.cdr)
		if err != nil {
			return nil, err
		}
		return sexpr.Cons(car, cdr), nil
	}
	return nil, fmt.Errorf("core: bad value kind %d", v.Kind)
}

func (m *Machine) childValueOf(c child) (sexpr.Value, error) {
	switch c.kind {
	case childNil:
		return nil, nil
	case childAtom:
		return m.heap.Atoms().Value(c.atom)
	case childEntry:
		return m.ValueOf(Value{Kind: VList, ID: c.id})
	default:
		return nil, fmt.Errorf("core: unset child")
	}
}
