package core

// TimingParams are the implementation-dependent interval lengths of the
// Fig 4.10–4.13 timing diagrams, in abstract cycles. The thesis does not
// fix values ("the relative sizes of intervals ... are dependent on the
// specifics of the SMALL implementation"); the defaults below assume a
// single-cycle LPT and a 10-cycle heap, which preserves the diagrams'
// qualitative shape: quick LP responses, post-return LPT update work, and
// EP stalls only on heap splits and I/O.
type TimingParams struct {
	EnvLookup  int64 // EP: interrogate the environment for bindings
	Send       int64 // EP→LP request transfer
	Return     int64 // LP→EP value transfer
	LPTIndex   int64 // LP: index the LPT and read an entry field
	LPTUpdate  int64 // LP: update an entry field
	RefUpdate  int64 // LP: one reference count adjustment
	AllocEntry int64 // LP: pop the free stack and initialise an entry
	HeapSplit  int64 // heap controller: split (or merge) one object
	IO         int64 // read in one list object
}

// DefaultTiming returns the default parameter set.
func DefaultTiming() TimingParams {
	return TimingParams{
		EnvLookup: 2, Send: 1, Return: 1,
		LPTIndex: 1, LPTUpdate: 1, RefUpdate: 1, AllocEntry: 1,
		HeapSplit: 10, IO: 50,
	}
}

// TimingStats summarises the simulated two-processor timeline.
type TimingStats struct {
	// EPClock is the EP's finish time — the makespan seen by the program.
	EPClock int64
	// LPBusy is the total LP service time.
	LPBusy int64
	// EPIdle is time the EP spent waiting for LP responses.
	EPIdle int64
	// Serial is the makespan had every operation been executed on one
	// processor with no overlap — the baseline for the concurrency claim
	// of §4.3.2.5.
	Serial int64
	// Ops counts timed LP operations.
	Ops int64
}

// Speedup returns Serial/EPClock, the gain from EP/LP overlap.
func (t TimingStats) Speedup() float64 {
	if t.EPClock == 0 {
		return 1
	}
	return float64(t.Serial) / float64(t.EPClock)
}

// timeline simulates the two time lines of the Fig 4.10–4.13 diagrams.
type timeline struct {
	p       TimingParams
	epClock int64
	lpFree  int64 // time at which the LP can accept the next request
	st      TimingStats
}

func newTimeline(p TimingParams) *timeline { return &timeline{p: p} }

// op advances the model by one LP request. epWork precedes the request;
// preReturn is LP work before the value goes back; postReturn is LP work
// overlapped with subsequent EP activity. waitsForValue is false for
// requests (rplaca, refcount updates) that return nothing.
func (tl *timeline) op(epWork, preReturn, postReturn int64, waitsForValue bool) {
	tl.epClock += epWork
	issued := tl.epClock + tl.p.Send
	start := issued
	if tl.lpFree > start {
		// LP still busy with post-return work from an earlier request:
		// the EP waits (the §4.3.2.5 chaining concern).
		tl.st.EPIdle += tl.lpFree - start
		start = tl.lpFree
	}
	returnAt := start + preReturn
	tl.lpFree = returnAt + postReturn
	tl.st.LPBusy += preReturn + postReturn
	if waitsForValue {
		resume := returnAt + tl.p.Return
		tl.st.EPIdle += resume - issued
		tl.epClock = resume
	} else {
		tl.epClock = issued
	}
	tl.st.Serial += epWork + tl.p.Send + preReturn + postReturn
	if waitsForValue {
		tl.st.Serial += tl.p.Return
	}
	tl.st.Ops++
}

// Timing returns the accumulated timeline statistics (zero value if the
// machine was built without timing).
func (m *Machine) Timing() TimingStats {
	if m.tl == nil {
		return TimingStats{}
	}
	st := m.tl.st
	st.EPClock = m.tl.epClock
	return st
}

// timeReadList models Fig 4.10: the EP must idle until I/O completes and
// the new entry's identifier (with its type tag) comes back.
func (m *Machine) timeReadList() {
	if m.tl == nil {
		return
	}
	p := m.tl.p
	m.tl.op(p.EnvLookup, p.IO+p.AllocEntry, p.LPTUpdate, true)
}

// timeAccess models Fig 4.11 (hit) and Fig 4.5's split path (miss): on a
// miss the LP must wait out the heap split before answering, because the
// result might be an atom whose type tag comes from the heap controller.
func (m *Machine) timeAccess(hit bool) {
	if m.tl == nil {
		return
	}
	p := m.tl.p
	if hit {
		m.tl.op(p.EnvLookup, p.LPTIndex, p.RefUpdate, true)
	} else {
		m.tl.op(p.EnvLookup,
			p.LPTIndex+p.HeapSplit+2*p.AllocEntry,
			2*p.LPTUpdate+p.RefUpdate, true)
	}
}

// timeCons models Fig 4.13: the identifier returns as soon as the entry
// is allocated; field setting and reference updates overlap the EP.
func (m *Machine) timeCons() {
	if m.tl == nil {
		return
	}
	p := m.tl.p
	m.tl.op(p.EnvLookup, p.AllocEntry, 2*p.LPTUpdate+2*p.RefUpdate, true)
}

// timeRplac models Fig 4.12: control passes straight back to the EP while
// the LP performs the modification.
func (m *Machine) timeRplac() {
	if m.tl == nil {
		return
	}
	p := m.tl.p
	m.tl.op(p.EnvLookup, 0, p.LPTIndex+2*p.RefUpdate+p.LPTUpdate, false)
}
