// Binary trace codec ("SMTB", version 1).
//
// The text format of Write/Read spends most of its bytes repeating op
// names and s-expression argument texts, and most of its decode time in
// strings.Split/strconv.Atoi and per-line allocation. The binary format
// writes each distinct op name and argument text once, into two
// front-loaded tables, and encodes the event sequence as varint columns
// in fixed-size blocks:
//
//	magic   4 bytes "SMTB"
//	version 1 byte
//	name    uvarint length + bytes
//	ops     uvarint count, then count x (uvarint length + bytes)
//	strs    uvarint count, then count x (uvarint length + bytes);
//	        entry 0 is always ""
//	events  uvarint count
//	blocks, each covering min(1024, remaining) events:
//	  kinds  one byte per event: bits 0-1 the kind (0=P 1=E 2=X),
//	         bits 2-7 the argument count n (prim arg indices / enter
//	         nargs); n = 63 means the true count follows in aux
//	  depths one uvarint per event
//	  ops    one uvarint per event (index into the op table)
//	  aux    per event, in order:
//	    P: uvarint result index, [uvarint nargs if n = 63],
//	       nargs x uvarint arg index
//	    E: [uvarint nargs if n = 63]
//	    X: nothing
//
// Front-loaded tables plus per-block columns mean a Decoder can yield
// events one at a time without materializing the whole trace, sharing
// one string per distinct op/argument. Versioning rule: the magic pins
// the family; any layout change bumps the version byte, and decoders
// reject versions they do not know.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

var (
	magicTrace  = [4]byte{'S', 'M', 'T', 'B'}
	magicStream = [4]byte{'S', 'M', 'R', 'S'}
)

const (
	traceVersion  = 1
	streamVersion = 1
	blockEvents   = 1024

	// Kind-byte packing. Both formats keep the kind in the low bits and
	// fold the event's argument count into the rest of the byte, with a
	// sentinel meaning "count too big, explicit varint in aux". The
	// stream format reserves bit 2 for the chaining flag, so its count
	// field is narrower.
	kindMask            = 0x03
	kindNArgsShift      = 2
	kindNArgsOverflow   = 0x3F // 6-bit field: 0..62 inline, 63 = explicit
	streamNArgsShift    = 3
	streamNArgsOverflow = 0x1F // 5-bit field: 0..30 inline, 31 = explicit

	// Decode limits. They reject absurd claims early (a hostile header
	// promising 2^60 strings) while admitting anything the tracer or
	// text decoder can produce.
	maxNameLen    = 1 << 16
	maxOpLen      = 1 << 12
	maxStrLen     = 1 << 24
	maxTableCount = 1 << 28
	maxEventCount = 1 << 31
	maxEventArgs  = 1 << 20
	maxDepth      = 1 << 30
	// preallocCap bounds capacity hints taken from header counts, so
	// memory grows with actual file bytes, not with hostile claims.
	preallocCap = 1 << 16
)

// encErrorf reports an unencodable in-memory trace (negative depth,
// empty op, ...): WriteBinary is strict so that everything it emits is
// accepted back by ReadBinary.
func encErrorf(format string, args ...any) error {
	return fmt.Errorf("trace: binary encode: "+format, args...)
}

// appendUvarint is binary.AppendUvarint for a reused scratch buffer.
func writeUvarint(bw *bufio.Writer, scratch []byte, v uint64) error {
	n := binary.PutUvarint(scratch, v)
	_, err := bw.Write(scratch[:n])
	return err
}

func writeTableString(bw *bufio.Writer, scratch []byte, s string) error {
	if err := writeUvarint(bw, scratch, uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

// countingWriter tracks bytes written through it so the encoders can
// record section and block offsets for the SMTX index footer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteBinary encodes t in the binary trace format with an SMTX index
// footer. The encoder is strict: events a text Write could not
// represent (negative depth or nargs, empty or tab-bearing op names)
// are rejected rather than written, so binary files never smuggle
// records past the text format's invariants.
func WriteBinary(w io.Writer, t *Trace) error {
	return writeBinary(w, t, true)
}

// WriteBinaryNoIndex encodes t without the SMTX footer — the pre-index
// v1 layout, byte-for-byte. Kept for compatibility tooling (tracegen
// -noindex) and for tests of the decode-everything fallback.
func WriteBinaryNoIndex(w io.Writer, t *Trace) error {
	return writeBinary(w, t, false)
}

func writeBinary(w io.Writer, t *Trace, withIndex bool) error {
	if strings.ContainsAny(t.Name, "\n\r") {
		return encErrorf("trace name contains a newline")
	}
	// First pass: build the op and string tables in first-appearance
	// order (deterministic, so re-encoding a decoded trace is
	// byte-identical).
	opIdx := make(map[string]uint64)
	var opNames []string
	strIdx := map[string]uint64{"": 0}
	strs := []string{""}
	internStr := func(s string) (uint64, error) {
		if i, ok := strIdx[s]; ok {
			return i, nil
		}
		if strings.ContainsAny(s, "\t\n\r") {
			return 0, encErrorf("argument text %q contains a tab or newline", s)
		}
		i := uint64(len(strs))
		strIdx[s] = i
		strs = append(strs, s)
		return i, nil
	}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind > KindExit {
			return encErrorf("event %d: unknown kind %d", i, ev.Kind)
		}
		if ev.Op == "" {
			return encErrorf("event %d: empty op", i)
		}
		if strings.ContainsAny(ev.Op, "\t\n\r") {
			return encErrorf("event %d: op %q contains a tab or newline", i, ev.Op)
		}
		if ev.Depth < 0 {
			return encErrorf("event %d: negative depth %d", i, ev.Depth)
		}
		if _, ok := opIdx[ev.Op]; !ok {
			opIdx[ev.Op] = uint64(len(opNames))
			opNames = append(opNames, ev.Op)
		}
		switch ev.Kind {
		case KindPrim:
			if _, err := internStr(ev.Result); err != nil {
				return err
			}
			for _, a := range ev.Args {
				if _, err := internStr(a); err != nil {
					return err
				}
			}
		case KindEnter:
			if ev.NArgs < 0 {
				return encErrorf("event %d: negative nargs %d", i, ev.NArgs)
			}
		}
	}

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	off := func() int64 { return cw.n + int64(bw.Buffered()) }
	scratch := make([]byte, binary.MaxVarintLen64)
	if _, err := bw.Write(magicTrace[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	if err := writeTableString(bw, scratch, t.Name); err != nil {
		return err
	}
	if err := writeUvarint(bw, scratch, uint64(len(opNames))); err != nil {
		return err
	}
	for _, s := range opNames {
		if err := writeTableString(bw, scratch, s); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, scratch, uint64(len(strs))); err != nil {
		return err
	}
	for _, s := range strs {
		if err := writeTableString(bw, scratch, s); err != nil {
			return err
		}
	}
	copyEnd := off()
	if err := writeUvarint(bw, scratch, uint64(len(t.Events))); err != nil {
		return err
	}

	// An absurdly large trace cannot be represented in a footer its own
	// decoders would accept; emit it un-indexed rather than fail.
	withIndex = withIndex && len(t.Events) <= maxEventCount && len(strs)-1 <= maxTableCount
	ix := &Index{
		Total:   len(t.Events),
		MaxID:   len(strs) - 1,
		CopyEnd: copyEnd,
		IDStart: copyEnd,
	}
	if withIndex {
		nb := blockCountOf(len(t.Events))
		ix.Offs = append(make([]int64, 0, min(nb, maxIndexBlocks)+1), off())
		ix.Counts = make([]int, 0, min(nb, maxIndexBlocks))
		ix.Marks = make([]int, 0, min(nb, maxIndexBlocks))
		ix.IDEnds = make([]int64, 0, min(nb, maxIndexBlocks))
	}
	runMax := 0

	for start := 0; start < len(t.Events); start += blockEvents {
		end := min(start+blockEvents, len(t.Events))
		block := t.Events[start:end]
		for i := range block {
			ev := &block[i]
			b := byte(ev.Kind)
			if n := eventNArgs(ev); n < kindNArgsOverflow {
				b |= byte(n) << kindNArgsShift
			} else {
				b |= kindNArgsOverflow << kindNArgsShift
			}
			if err := bw.WriteByte(b); err != nil {
				return err
			}
		}
		for i := range block {
			if err := writeUvarint(bw, scratch, uint64(block[i].Depth)); err != nil {
				return err
			}
		}
		for i := range block {
			if err := writeUvarint(bw, scratch, opIdx[block[i].Op]); err != nil {
				return err
			}
		}
		for i := range block {
			ev := &block[i]
			switch ev.Kind {
			case KindPrim:
				ri := strIdx[ev.Result]
				runMax = max(runMax, int(ri))
				if err := writeUvarint(bw, scratch, ri); err != nil {
					return err
				}
				if n := len(ev.Args); n >= kindNArgsOverflow {
					if err := writeUvarint(bw, scratch, uint64(n)); err != nil {
						return err
					}
				}
				for _, a := range ev.Args {
					ai := strIdx[a]
					runMax = max(runMax, int(ai))
					if err := writeUvarint(bw, scratch, ai); err != nil {
						return err
					}
				}
			case KindEnter:
				if ev.NArgs >= kindNArgsOverflow {
					if err := writeUvarint(bw, scratch, uint64(ev.NArgs)); err != nil {
						return err
					}
				}
			}
		}
		if withIndex {
			ix.Offs = append(ix.Offs, off())
			ix.Counts = append(ix.Counts, end-start)
			ix.Marks = append(ix.Marks, runMax)
			// SMTB has no id-text section; the table watermark is
			// pinned to the end of the header prefix.
			ix.IDEnds = append(ix.IDEnds, copyEnd)
		}
	}
	if withIndex {
		if _, err := bw.Write(appendIndexFooterBytes(nil, ix)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// eventNArgs is the argument count packed into an event's kind byte:
// prims carry their argument-index count, enters the declared NArgs.
func eventNArgs(ev *Event) int {
	switch ev.Kind {
	case KindPrim:
		return len(ev.Args)
	case KindEnter:
		return ev.NArgs
	}
	return 0
}

// Decoder streams events out of a binary trace without materializing
// the whole Trace. Construct with NewDecoder, then call Next until it
// returns io.EOF. Decoded events share the decoder's interned op and
// argument strings, and Next reuses the caller's Args backing array, so
// steady-state decoding allocates nothing per event.
type Decoder struct {
	r    io.Reader
	buf  []byte
	pos  int   // next unread byte in buf
	lim  int   // valid bytes in buf
	rerr error // deferred read error; io.EOF at a clean end of input
	off  int64 // bytes consumed; decode errors carry this offset

	name    string
	ops     []string
	strs    []string
	total   int
	copyEnd int64 // offset past the last front-loaded table

	remaining int // events not yet handed out, including current block
	blockN    int // events in the current block
	blockI    int // next event within the block
	event     int // absolute index of the next event (for errors)
	kinds     [blockEvents]byte
	depths    [blockEvents]int64
	opix      [blockEvents]uint32
}

// errf wraps a decode failure with the current byte offset and event
// index — the binary-format analogue of the text decoder's line number.
func (d *Decoder) errf(format string, args ...any) error {
	return fmt.Errorf("trace: binary: offset %d (event %d): %s",
		d.off, d.event, fmt.Sprintf(format, args...))
}

// decodeBufSize is the decoder's read-ahead window. The hot path
// decodes varints with direct slice indexing into this buffer; an
// io.Reader round trip happens once per window, not per byte.
const decodeBufSize = 64 << 10

// fill compacts unread bytes to the front of the buffer and reads more
// from the source, stopping as soon as it makes progress.
func (d *Decoder) fill() {
	if d.pos > 0 {
		d.lim = copy(d.buf, d.buf[d.pos:d.lim])
		d.pos = 0
	}
	for d.rerr == nil && d.lim < len(d.buf) {
		n, err := d.r.Read(d.buf[d.lim:])
		d.lim += n
		if err != nil {
			d.rerr = err
		}
		if n > 0 {
			return
		}
	}
}

func (d *Decoder) readByte() (byte, error) {
	for d.pos == d.lim {
		if d.rerr != nil {
			return 0, d.rerr
		}
		d.fill()
	}
	b := d.buf[d.pos]
	d.pos++
	d.off++
	return b, nil
}

// readFull is io.ReadFull against the decoder's buffer; on a short read
// it returns the bytes it got with the underlying error.
func (d *Decoder) readFull(dst []byte) (int, error) {
	got := 0
	for got < len(dst) {
		if d.pos == d.lim {
			if d.rerr != nil {
				return got, d.rerr
			}
			d.fill()
			continue
		}
		n := copy(dst[got:], d.buf[d.pos:d.lim])
		got += n
		d.pos += n
		d.off += int64(n)
	}
	return got, nil
}

// readUvarint decodes a varint by direct indexing into the buffered
// window — one of these runs per column entry, so it must not pay an
// interface call per byte. The single-byte case (depths, op indices,
// small tables) stays small enough for the compiler to inline.
func (d *Decoder) readUvarint(what string) (uint64, error) {
	if d.pos < d.lim {
		if b := d.buf[d.pos]; b < 0x80 {
			d.pos++
			d.off++
			return uint64(b), nil
		}
	}
	return d.readUvarintSlow(what)
}

func (d *Decoder) readUvarintSlow(what string) (uint64, error) {
	for d.lim-d.pos < binary.MaxVarintLen64 && d.rerr == nil {
		d.fill()
	}
	v, n := binary.Uvarint(d.buf[d.pos:d.lim])
	if n > 0 {
		d.pos += n
		d.off += int64(n)
		return v, nil
	}
	if n < 0 {
		return 0, d.errf("reading %s: varint overflows 64 bits", what)
	}
	// n == 0: the varint runs past the end of input.
	if d.rerr != nil && d.rerr != io.EOF {
		return 0, d.errf("reading %s: %v", what, d.rerr)
	}
	return 0, d.errf("unexpected EOF reading %s", what)
}

// readCount reads a uvarint bounded by limit.
func (d *Decoder) readCount(what string, limit uint64) (int, error) {
	v, err := d.readUvarint(what)
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, d.errf("%s %d exceeds limit %d", what, v, limit)
	}
	return int(v), nil
}

func (d *Decoder) readTableString(what string, maxLen int) (string, error) {
	n, err := d.readCount(what+" length", uint64(maxLen))
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	buf := make([]byte, n)
	got, err := d.readFull(buf)
	if err != nil {
		return "", d.errf("unexpected EOF reading %s (%d of %d bytes)", what, got, n)
	}
	s := string(buf)
	if strings.ContainsAny(s, "\t\n\r") {
		return "", d.errf("%s %q contains a tab or newline", what, s)
	}
	return s, nil
}

// readTable reads count length-prefixed entries, packing their bytes
// into one shared backing string so decoding a table costs O(1) string
// allocations instead of one per entry. The capacity hints stay bounded
// by preallocCap; memory grows with bytes actually read from the file.
func (d *Decoder) readTable(what string, count, maxLen int, allowEmpty bool) ([]string, error) {
	out := make([]string, 0, min(count, preallocCap))
	if count == 0 {
		return out, nil
	}
	lens := make([]int, 0, min(count, preallocCap))
	var buf []byte
	for i := 0; i < count; i++ {
		n, err := d.readCount(what+" length", uint64(maxLen))
		if err != nil {
			return nil, err
		}
		if n == 0 && !allowEmpty {
			return nil, d.errf("%s table entry %d is empty", what, i)
		}
		if cap(buf)-len(buf) < n {
			nb := make([]byte, len(buf), max(2*cap(buf), len(buf)+n))
			copy(nb, buf)
			buf = nb
		}
		start := len(buf)
		buf = buf[:start+n]
		got, err := d.readFull(buf[start:])
		if err != nil {
			return nil, d.errf("unexpected EOF reading %s (%d of %d bytes)", what, got, n)
		}
		lens = append(lens, n)
	}
	backing := string(buf)
	pos := 0
	for i, n := range lens {
		s := backing[pos : pos+n]
		pos += n
		if strings.ContainsAny(s, "\t\n\r") {
			return nil, d.errf("%s entry %d %q contains a tab or newline", what, i, s)
		}
		out = append(out, s)
	}
	return out, nil
}

// NewDecoder reads the header and tables of a binary trace and prepares
// to stream its events.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: r, buf: make([]byte, decodeBufSize)}
	var magic [4]byte
	got, err := d.readFull(magic[:])
	if err != nil || magic != magicTrace {
		return nil, d.errf("not a binary trace (bad magic %q)", magic[:got])
	}
	ver, err := d.readByte()
	if err != nil {
		return nil, d.errf("unexpected EOF reading version")
	}
	if ver != traceVersion {
		return nil, d.errf("unsupported binary trace version %d (want %d)", ver, traceVersion)
	}
	if d.name, err = d.readTableString("trace name", maxNameLen); err != nil {
		return nil, err
	}
	nops, err := d.readCount("op table count", maxTableCount)
	if err != nil {
		return nil, err
	}
	if d.ops, err = d.readTable("op name", nops, maxOpLen, false); err != nil {
		return nil, err
	}
	// Share the canonical interned instance across traces; if the global
	// op table is full, keep the table-backed substring.
	for i, s := range d.ops {
		if c := InternOp(s); c != OpNone {
			d.ops[i] = OpName(c)
		}
	}
	nstrs, err := d.readCount("string table count", maxTableCount)
	if err != nil {
		return nil, err
	}
	if d.strs, err = d.readTable("string table entry", nstrs, maxStrLen, true); err != nil {
		return nil, err
	}
	d.copyEnd = d.off
	if d.total, err = d.readCount("event count", maxEventCount); err != nil {
		return nil, err
	}
	d.remaining = d.total
	return d, nil
}

// Name returns the trace name from the header.
func (d *Decoder) Name() string { return d.name }

// Events returns the total event count from the header.
func (d *Decoder) Events() int { return d.total }

// readBlock loads the next block's kind/depth/op columns.
func (d *Decoder) readBlock() error {
	n := min(blockEvents, d.remaining)
	d.blockN, d.blockI = n, 0
	got, err := d.readFull(d.kinds[:n])
	if err != nil {
		return d.errf("unexpected EOF reading kind column (%d of %d bytes)", got, n)
	}
	for i := 0; i < n; i++ {
		kb := d.kinds[i]
		if kb&kindMask > byte(KindExit) {
			return d.errf("unknown event kind %d", kb&kindMask)
		}
		if kb&kindMask == byte(KindExit) && kb>>kindNArgsShift != 0 {
			return d.errf("exit event kind byte %#x carries an argument count", kb)
		}
	}
	for i := 0; i < n; i++ {
		v, err := d.readUvarint("depth")
		if err != nil {
			return err
		}
		if v > maxDepth {
			return d.errf("depth %d exceeds limit %d", v, int64(maxDepth))
		}
		d.depths[i] = int64(v)
	}
	for i := 0; i < n; i++ {
		v, err := d.readUvarint("op index")
		if err != nil {
			return err
		}
		if v >= uint64(len(d.ops)) {
			return d.errf("op index %d out of range (table has %d)", v, len(d.ops))
		}
		d.opix[i] = uint32(v)
	}
	return nil
}

// Next decodes the next event into ev, reusing ev's Args backing array
// when its capacity suffices. It returns io.EOF after the last event.
// The strings placed in ev are shared with the decoder's tables: valid
// indefinitely, but common to all events.
func (d *Decoder) Next(ev *Event) error {
	if d.blockI >= d.blockN {
		if d.remaining == 0 {
			return io.EOF
		}
		if err := d.readBlock(); err != nil {
			return err
		}
	}
	i := d.blockI
	kb := d.kinds[i]
	kind := Kind(kb & kindMask)
	nargs := int(kb >> kindNArgsShift)
	// Keep the caller's Args backing array across every event kind —
	// enter/exit events must not drop it, or the next prim reallocates.
	args := ev.Args[:0]
	*ev = Event{Kind: kind, Op: d.ops[d.opix[i]], Depth: int(d.depths[i]), Args: args}
	switch kind {
	case KindPrim:
		ri, err := d.readUvarint("result index")
		if err != nil {
			return err
		}
		if ri >= uint64(len(d.strs)) {
			return d.errf("result index %d out of range (table has %d)", ri, len(d.strs))
		}
		ev.Result = d.strs[ri]
		if nargs == kindNArgsOverflow {
			if nargs, err = d.readCount("argument count", maxEventArgs); err != nil {
				return err
			}
		}
		for j := 0; j < nargs; j++ {
			ai, err := d.readUvarint("argument index")
			if err != nil {
				return err
			}
			if ai >= uint64(len(d.strs)) {
				return d.errf("argument index %d out of range (table has %d)", ai, len(d.strs))
			}
			args = append(args, d.strs[ai])
		}
		ev.Args = args
	case KindEnter:
		if nargs == kindNArgsOverflow {
			var err error
			if nargs, err = d.readCount("nargs", maxEventArgs); err != nil {
				return err
			}
		}
		ev.NArgs = nargs
	}
	d.blockI++
	d.event++
	d.remaining--
	return nil
}

// ReadBinary decodes a complete binary trace written by WriteBinary.
// Event argument slices are carved out of shared chunked arrays and the
// strings are interned per table entry, so decoding allocates orders of
// magnitude less than the text Read.
func ReadBinary(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: d.Name()}
	t.Events = make([]Event, 0, min(d.Events(), preallocCap))
	// This is Next's decode loop inlined to fill the events slice in
	// place: no intermediate Event copy, and argument indices resolve
	// straight into chunked arena storage instead of through a scratch
	// slice. Keep the two in sync with any format change.
	var arena []string // chunked backing storage for event Args
	// Per-block offsets and watermarks, recorded so an SMTX footer (if
	// present) can be verified against what the file actually holds.
	nb := blockCountOf(d.total)
	offs := append(make([]int64, 0, min(nb+1, preallocCap)), d.off)
	marks := make([]int, 0, min(nb, preallocCap))
	runMax := 0
	for d.event < d.total {
		if d.blockI >= d.blockN {
			if d.event > 0 {
				// Close the previous block.
				offs = append(offs, d.off)
				marks = append(marks, runMax)
			}
			if err := d.readBlock(); err != nil {
				return nil, err
			}
		}
		i := d.blockI
		kb := d.kinds[i]
		nargs := int(kb >> kindNArgsShift)
		t.Events = append(t.Events, Event{
			Kind: Kind(kb & kindMask), Op: d.ops[d.opix[i]], Depth: int(d.depths[i]),
		})
		e := &t.Events[len(t.Events)-1]
		switch e.Kind {
		case KindPrim:
			ri, err := d.readUvarint("result index")
			if err != nil {
				return nil, err
			}
			if ri >= uint64(len(d.strs)) {
				return nil, d.errf("result index %d out of range (table has %d)", ri, len(d.strs))
			}
			runMax = max(runMax, int(ri))
			e.Result = d.strs[ri]
			if nargs == kindNArgsOverflow {
				if nargs, err = d.readCount("argument count", maxEventArgs); err != nil {
					return nil, err
				}
			}
			if nargs > 0 {
				if len(arena)+nargs > cap(arena) {
					arena = make([]string, 0, max(4*blockEvents, nargs))
				}
				start := len(arena)
				for j := 0; j < nargs; j++ {
					ai, err := d.readUvarint("argument index")
					if err != nil {
						return nil, err
					}
					if ai >= uint64(len(d.strs)) {
						return nil, d.errf("argument index %d out of range (table has %d)", ai, len(d.strs))
					}
					runMax = max(runMax, int(ai))
					arena = append(arena, d.strs[ai])
				}
				e.Args = arena[start:len(arena):len(arena)]
			}
		case KindEnter:
			if nargs == kindNArgsOverflow {
				if nargs, err = d.readCount("nargs", maxEventArgs); err != nil {
					return nil, err
				}
			}
			e.NArgs = nargs
		}
		d.blockI++
		d.event++
		d.remaining--
	}
	if d.total > 0 {
		offs = append(offs, d.off)
		marks = append(marks, runMax)
	}
	// The event count is authoritative; trailing bytes are either an
	// SMTX index footer (verified claim by claim against the offsets
	// and watermarks recorded above) or corruption.
	err = d.verifyTrailer("events", d.total, len(d.strs)-1, d.copyEnd, d.copyEnd,
		offs, marks, func(int) int64 { return d.copyEnd })
	if err != nil {
		return nil, err
	}
	return t, nil
}
