package trace

import "strings"

// RefKind discriminates preprocessed events.
type RefKind uint8

const (
	// RefPrim is a preprocessed list primitive call.
	RefPrim RefKind = iota
	// RefEnter is a user function entry.
	RefEnter
	// RefExit is a user function exit.
	RefExit
)

// Ref is one event of the preprocessed reference stream of §5.2.1. Each
// list argument of the original trace is replaced by a unique integer
// identifier (textually identical lists share an identifier, as in the
// thesis) and a chaining flag that is set when the argument is the value
// returned by the immediately preceding primitive call in the trace.
type Ref struct {
	Kind   RefKind
	Op     Opcode // interned primitive or function name (see OpName)
	Args   []int  // identifiers of list arguments; 0 for atom arguments
	Result int    // identifier of the result if it is a list, else 0
	NArgs  int    // for RefEnter
	Chain  bool   // first list argument chains from the previous result
	Depth  int
}

// Stream is a preprocessed trace plus its identifier universe.
type Stream struct {
	Name  string
	Refs  []Ref
	MaxID int // identifiers are 1..MaxID
	// IDText is the dense identifier -> s-expression text table:
	// IDText[id] for id in 1..MaxID; IDText[0] is "".
	IDText []string
}

// Text returns the s-expression text of an identifier, or "" when the
// identifier is out of range (0, or a stream loaded without texts).
func (st *Stream) Text(id int) string {
	if id > 0 && id < len(st.IDText) {
		return st.IDText[id]
	}
	return ""
}

// Preprocess converts a raw trace into the (identifier, chaining flag)
// stream used by the Chapter 3 locality analyses and the Chapter 5
// simulator. Identifier 0 is reserved for "not a list".
func Preprocess(t *Trace) *Stream {
	ids := make(map[string]int)
	st := &Stream{Name: t.Name, IDText: make([]string, 1, 64)}
	intern := func(s string) int {
		if !isListText(s) {
			return 0
		}
		if id, ok := ids[s]; ok {
			return id
		}
		st.MaxID++
		ids[s] = st.MaxID
		st.IDText = append(st.IDText, s)
		return st.MaxID
	}
	prevResult := 0
	for i := range t.Events {
		ev := &t.Events[i]
		op := InternOp(ev.Op)
		switch ev.Kind {
		case KindEnter:
			st.Refs = append(st.Refs, Ref{Kind: RefEnter, Op: op, NArgs: ev.NArgs, Depth: ev.Depth})
		case KindExit:
			st.Refs = append(st.Refs, Ref{Kind: RefExit, Op: op, Depth: ev.Depth})
		case KindPrim:
			r := Ref{Kind: RefPrim, Op: op, Depth: ev.Depth}
			for _, a := range ev.Args {
				r.Args = append(r.Args, intern(a))
			}
			r.Result = intern(ev.Result)
			for _, id := range r.Args {
				if id != 0 && id == prevResult && prevResult != 0 {
					r.Chain = true
					break
				}
			}
			st.Refs = append(st.Refs, r)
			prevResult = r.Result
		}
	}
	return st
}

// isListText reports whether an s-expression's printed form denotes a
// non-nil list.
func isListText(s string) bool {
	return strings.HasPrefix(s, "(")
}

// SummarizeStream computes Stats directly from a preprocessed stream,
// so serialized .refs files can be reported on without the original
// trace text. For st = Preprocess(t) it agrees with Summarize(t).
func SummarizeStream(st *Stream) Stats {
	s := Stats{PerOp: make(map[string]int)}
	for i := range st.Refs {
		r := &st.Refs[i]
		switch r.Kind {
		case RefPrim:
			s.Primitives++
			s.PerOp[OpName(r.Op)]++
		case RefEnter:
			s.Functions++
			if r.Depth > s.MaxDepth {
				s.MaxDepth = r.Depth
			}
		}
	}
	return s
}

// MeasureNPStream computes the Table 3.1 n/p metrics from a
// preprocessed stream's identifier table: every distinct list-valued
// primitive argument appears there exactly once. For st = Preprocess(t)
// it agrees with MeasureNP(t).
func MeasureNPStream(st *Stream) NPStats {
	np := NPStats{NDist: make(map[int]int), PDist: make(map[int]int)}
	// Decoded streams guarantee MaxID <= maxTableCount (stream.go), but
	// hand-built ones carry no such promise; clamp at the allocation.
	maxID := min(st.MaxID, maxTableCount)
	seen := make([]bool, maxID+1)
	var order []int
	for i := range st.Refs {
		r := &st.Refs[i]
		if r.Kind != RefPrim {
			continue
		}
		for _, id := range r.Args {
			if id > 0 && id <= maxID && !seen[id] {
				seen[id] = true
				order = append(order, id)
			}
		}
	}
	var sumN, sumP int
	for _, id := range order {
		m, ok := measureText(st.Text(id))
		if !ok {
			continue
		}
		np.Lists++
		sumN += m.N
		sumP += m.P
		np.NDist[m.N]++
		np.PDist[m.P]++
	}
	if np.Lists > 0 {
		np.AvgN = float64(sumN) / float64(np.Lists)
		np.AvgP = float64(sumP) / float64(np.Lists)
	}
	return np
}

// ChainStats computes Table 3.2: the percentage of car and cdr calls whose
// argument was produced by the immediately preceding primitive call.
type ChainStats struct {
	CarPct float64
	CdrPct float64
	AllPct float64 // over every primitive call
}

// Chaining measures primitive function chaining over a preprocessed stream.
func Chaining(st *Stream) ChainStats {
	var car, carC, cdr, cdrC, all, allC int
	for i := range st.Refs {
		r := &st.Refs[i]
		if r.Kind != RefPrim {
			continue
		}
		all++
		if r.Chain {
			allC++
		}
		switch r.Op {
		case OpCar:
			car++
			if r.Chain {
				carC++
			}
		case OpCdr:
			cdr++
			if r.Chain {
				cdrC++
			}
		}
	}
	pct := func(c, n int) float64 {
		if n == 0 {
			return 0
		}
		return 100 * float64(c) / float64(n)
	}
	return ChainStats{CarPct: pct(carC, car), CdrPct: pct(cdrC, cdr), AllPct: pct(allC, all)}
}
