// Block index footers ("SMTX", version 1).
//
// Both container formats (SMTB traces, SMRS reference streams) encode
// their payload as varint columns in 1024-event blocks, but nothing in
// the v1 layout says where a block's bytes begin: planning a sharded
// replay or slicing out a block range used to mean decoding everything.
// The SMTX footer is an optional trailer that records, per block, the
// encoded byte length, the event count, the running maximum identifier
// referenced so far (the "id watermark"), and the byte boundary of the
// id-text table entry for that watermark (the "table watermark"). With
// it, a shard covering blocks [b0,b1) is a byte-range sub-slice of the
// original encoding — verbatim header prefix, truncated id-text table,
// raw block bytes, fresh sub-footer — with no decode and no re-encode.
//
//	"SMTX"   4 bytes
//	version  1 byte
//	total    uvarint  event/ref count (must match the container header)
//	maxid    uvarint  SMRS: header maxid; SMTB: last string-table index
//	copyend  uvarint  bytes of header prefix a slice copies verbatim
//	                  (SMRS: through the op table; SMTB: through the
//	                  string table)
//	nblocks  uvarint  must equal ceil(total/1024)
//	lens     nblocks x uvarint   encoded byte length of each block
//	counts   nblocks x uvarint   events in each block (redundant with
//	                             total; verified, kept for dump tools)
//	marks    nblocks x uvarint   id watermark, delta-encoded
//	idends   nblocks x uvarint   table watermark byte offset,
//	                             delta-encoded from the id-text start
//	flen     4 bytes LE          footer length, "SMTX" through idends
//	"SMTX"   4 bytes
//
// The trailing magic + fixed-width length let ParseIndex locate the
// footer from the end of a byte slice; the leading magic lets the
// sequential decoders detect it where v1 files simply end. Back-compat
// is absolute in both directions: un-indexed files still decode
// everywhere (the footer hook only fires on the "SMTX" magic where
// trailing bytes were already an error), and indexed files decode in
// any v1 reader that checks events before trailing bytes — the block
// count in the header is authoritative, so the footer is never
// mistaken for event data.
//
// Trust model: the sequential decoders (ReadBinary, ReadStream) verify
// every footer claim against the actual offsets and ids they decode, so
// a stream that decodes cleanly has a truthful index. ParseIndex alone
// performs structural checks only; block-level consumers (DecodeBlock)
// re-check byte consumption, counts, and id ranges per block, so a
// lying index over hostile bytes is caught at decode time.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

var magicIndex = [4]byte{'S', 'M', 'T', 'X'}

const (
	indexVersion = 1
	// maxIndexBlocks bounds the footer's block count claim; it is
	// exactly the block count of the largest admissible event count.
	maxIndexBlocks = maxEventCount / blockEvents
	// maxFileOff bounds byte offsets and lengths claimed by a footer.
	// Far above any real file, far below int64 overflow when summed
	// across maxIndexBlocks blocks.
	maxFileOff = 1 << 40
)

// blockCountOf is the number of blocks covering n events.
func blockCountOf(n int) int {
	return (n + blockEvents - 1) / blockEvents
}

// uvarintLen is the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// Index is a decoded SMTX footer plus the absolute offsets derived from
// it. Offs has one extra entry: block k spans bytes [Offs[k], Offs[k+1])
// of the encoding, so Offs[0] is the start of block 0 and the last entry
// is the end of the final block.
type Index struct {
	Total   int   // events (SMTB) / refs (SMRS) covered
	MaxID   int   // SMRS: header maxid; SMTB: last string-table index
	CopyEnd int64 // end of the verbatim header prefix
	IDStart int64 // first byte of the id-text (SMRS) section; == CopyEnd for SMTB
	Offs    []int64
	Counts  []int   // events per block
	Marks   []int   // running max id referenced through block k
	IDEnds  []int64 // byte offset just past id-text entry Marks[k]
}

// Blocks is the number of event blocks the index covers.
func (ix *Index) Blocks() int { return len(ix.Counts) }

// expectBlockCount is the event count block k must carry given the
// total: full blocks of blockEvents, with only the last one short.
func expectBlockCount(total, k int) int {
	return min(blockEvents, total-k*blockEvents)
}

// appendIndexFooterBytes serializes ix as an SMTX footer. Only the
// deltas of Offs and IDEnds are written, so the slices may carry
// offsets in a parent encoding's frame (AppendSlicePayload exploits
// this to emit sub-footers without copying index arrays).
func appendIndexFooterBytes(dst []byte, ix *Index) []byte {
	fStart := len(dst)
	dst = append(dst, magicIndex[:]...)
	dst = append(dst, indexVersion)
	dst = binary.AppendUvarint(dst, uint64(ix.Total))
	dst = binary.AppendUvarint(dst, uint64(ix.MaxID))
	dst = binary.AppendUvarint(dst, uint64(ix.CopyEnd))
	n := ix.Blocks()
	dst = binary.AppendUvarint(dst, uint64(n))
	for k := 0; k < n; k++ {
		dst = binary.AppendUvarint(dst, uint64(ix.Offs[k+1]-ix.Offs[k]))
	}
	for k := 0; k < n; k++ {
		dst = binary.AppendUvarint(dst, uint64(ix.Counts[k]))
	}
	prev := 0
	for k := 0; k < n; k++ {
		dst = binary.AppendUvarint(dst, uint64(ix.Marks[k]-prev))
		prev = ix.Marks[k]
	}
	prevEnd := ix.IDStart
	for k := 0; k < n; k++ {
		dst = binary.AppendUvarint(dst, uint64(ix.IDEnds[k]-prevEnd))
		prevEnd = ix.IDEnds[k]
	}
	flen := len(dst) - fStart
	dst = binary.LittleEndian.AppendUint32(dst, uint32(flen))
	return append(dst, magicIndex[:]...)
}

// indexFooter is the raw columns of a parsed footer, before absolute
// offsets are derived. idEndRel[k] is IDEnds[k] - IDStart.
type indexFooter struct {
	total    int
	maxID    int
	copyEnd  int64
	lens     []int64
	counts   []int
	marks    []int
	idEndRel []int64
}

// readIndexFooter decodes the footer columns after the leading "SMTX"
// magic and enforces the self-consistency invariants every index must
// satisfy: block count determined by total, per-block counts likewise,
// watermarks nondecreasing and bounded by maxid, offsets bounded.
func readIndexFooter(d *Decoder) (*indexFooter, error) {
	ver, err := d.readByte()
	if err != nil {
		return nil, d.errf("unexpected EOF reading index version")
	}
	if ver != indexVersion {
		return nil, d.errf("unsupported index version %d (want %d)", ver, indexVersion)
	}
	f := &indexFooter{}
	if f.total, err = d.readCount("index event count", maxEventCount); err != nil {
		return nil, err
	}
	if f.maxID, err = d.readCount("index max identifier", maxTableCount); err != nil {
		return nil, err
	}
	ce, err := d.readCount("index header prefix length", maxFileOff)
	if err != nil {
		return nil, err
	}
	f.copyEnd = int64(ce)
	nblocks, err := d.readCount("index block count", maxIndexBlocks)
	if err != nil {
		return nil, err
	}
	if nblocks != blockCountOf(f.total) {
		return nil, d.errf("index block count %d does not cover %d events", nblocks, f.total)
	}
	f.lens = make([]int64, 0, min(nblocks, preallocCap))
	var sum int64
	for k := 0; k < nblocks; k++ {
		l, err := d.readCount("index block length", maxFileOff)
		if err != nil {
			return nil, err
		}
		sum += int64(l)
		if sum > maxFileOff {
			return nil, d.errf("index block lengths sum past limit %d", int64(maxFileOff))
		}
		f.lens = append(f.lens, int64(l))
	}
	f.counts = make([]int, 0, min(nblocks, preallocCap))
	for k := 0; k < nblocks; k++ {
		c, err := d.readCount("index block event count", blockEvents)
		if err != nil {
			return nil, err
		}
		if c != expectBlockCount(f.total, k) {
			return nil, d.errf("index block %d event count %d, want %d", k, c, expectBlockCount(f.total, k))
		}
		f.counts = append(f.counts, c)
	}
	f.marks = make([]int, 0, min(nblocks, preallocCap))
	mark := 0
	for k := 0; k < nblocks; k++ {
		dm, err := d.readCount("index id watermark delta", maxTableCount)
		if err != nil {
			return nil, err
		}
		mark += dm
		if mark > f.maxID {
			return nil, d.errf("index block %d id watermark %d exceeds max identifier %d", k, mark, f.maxID)
		}
		f.marks = append(f.marks, mark)
	}
	f.idEndRel = make([]int64, 0, min(nblocks, preallocCap))
	var rel int64
	for k := 0; k < nblocks; k++ {
		de, err := d.readCount("index table watermark delta", maxFileOff)
		if err != nil {
			return nil, err
		}
		rel += int64(de)
		if rel > maxFileOff {
			return nil, d.errf("index table watermarks run past limit %d", int64(maxFileOff))
		}
		f.idEndRel = append(f.idEndRel, rel)
	}
	return f, nil
}

// verifyTrailer consumes an optional SMTX footer at the current decode
// position — which must be immediately after the last event block — and
// checks every claim it makes against the actuals the caller recorded
// while decoding: the header prefix boundary, each block's byte length,
// and each block's watermarks. Watermarks may over-approximate (a
// sliced payload inherits its parent's marks, which cover ids the slice
// never references) but must never under-approximate, and the table
// watermark must be the exact id-text boundary of the claimed mark, as
// reported by idEndAt. A clean EOF means an un-indexed file and is not
// an error; any other trailing bytes are corruption, exactly as before
// the footer existed.
func (d *Decoder) verifyTrailer(what string, total, maxID int, copyEnd, idStart int64, offs []int64, marks []int, idEndAt func(mark int) int64) error {
	var magic [4]byte
	got, err := d.readFull(magic[:])
	if err != nil {
		if got == 0 && err == io.EOF {
			return nil // un-indexed: clean end of input
		}
		return d.errf("trailing data after %d %s", total, what)
	}
	if magic != magicIndex {
		return d.errf("trailing data after %d %s", total, what)
	}
	fStart := d.off - int64(len(magic))
	f, err := readIndexFooter(d)
	if err != nil {
		return err
	}
	if f.total != total {
		return d.errf("index claims %d %s, file has %d", f.total, what, total)
	}
	if f.maxID != maxID {
		return d.errf("index claims max identifier %d, file has %d", f.maxID, maxID)
	}
	if f.copyEnd != copyEnd {
		return d.errf("index claims header prefix %d bytes, actual %d", f.copyEnd, copyEnd)
	}
	if len(f.lens) != len(offs)-1 {
		return d.errf("index covers %d blocks, file has %d", len(f.lens), len(offs)-1)
	}
	for k := range f.lens {
		if actual := offs[k+1] - offs[k]; f.lens[k] != actual {
			return d.errf("index block %d length %d, actual %d", k, f.lens[k], actual)
		}
	}
	for k := range f.marks {
		if f.marks[k] < marks[k] {
			return d.errf("index block %d id watermark %d below actual %d", k, f.marks[k], marks[k])
		}
		if want := idEndAt(f.marks[k]); idStart+f.idEndRel[k] != want {
			return d.errf("index block %d table watermark %d, want %d for id %d",
				k, idStart+f.idEndRel[k], want, f.marks[k])
		}
	}
	flen := d.off - fStart
	var lenBuf [4]byte
	if _, err := d.readFull(lenBuf[:]); err != nil {
		return d.errf("unexpected EOF reading index footer length")
	}
	if got := binary.LittleEndian.Uint32(lenBuf[:]); got != uint32(flen) {
		return d.errf("index footer length %d, actual %d", got, flen)
	}
	if _, err := d.readFull(magic[:]); err != nil || magic != magicIndex {
		return d.errf("index footer missing trailing magic")
	}
	if _, err := d.readByte(); err != io.EOF {
		return d.errf("trailing data after index footer")
	}
	return nil
}

// newBytesDecoder wraps a Decoder directly over an in-memory slice: the
// buffered window is the whole input, rerr is pre-set to io.EOF, so
// fill never runs (and never compacts, leaving the caller's bytes
// untouched) and no io.Reader round trips happen. base seeds the byte
// offset carried by decode errors.
func newBytesDecoder(data []byte, base int64) *Decoder {
	return &Decoder{buf: data, pos: 0, lim: len(data), rerr: io.EOF, off: base}
}

// ParseIndex locates and decodes the SMTX footer of a complete encoded
// trace or stream held in memory. It returns (nil, nil) when the bytes
// carry no footer, the decoded Index when they carry a structurally
// valid one, and an error when a footer is present but malformed. The
// checks here are structural (offsets nest, watermarks fit); truth
// against the event bytes comes from the sequential decoders or from
// per-block checks in DecodeBlock.
func ParseIndex(data []byte) (*Index, error) {
	if len(data) < 8 || !bytes.Equal(data[len(data)-4:], magicIndex[:]) {
		return nil, nil
	}
	isStream := bytes.HasPrefix(data, magicStream[:])
	if !isStream && !bytes.HasPrefix(data, magicTrace[:]) {
		return nil, fmt.Errorf("trace: index: trailer on unrecognized container")
	}
	end := int64(len(data)) - 8 // footer columns end here
	flen := int64(binary.LittleEndian.Uint32(data[end : end+4]))
	fStart := end - flen
	// Smallest conceivable container in front of the footer: magic,
	// version, empty name, empty tables, zero counts.
	if fStart < 7 {
		return nil, fmt.Errorf("trace: index: footer length %d exceeds file", flen)
	}
	if !bytes.Equal(data[fStart:fStart+4], magicIndex[:]) {
		return nil, fmt.Errorf("trace: index: footer at offset %d missing magic", fStart)
	}
	d := newBytesDecoder(data[fStart+4:end], fStart+4)
	f, err := readIndexFooter(d)
	if err != nil {
		return nil, err
	}
	if _, err := d.readByte(); err != io.EOF {
		return nil, d.errf("index footer has trailing bytes")
	}

	ix := &Index{Total: f.total, MaxID: f.maxID, CopyEnd: f.copyEnd}
	var sum int64
	for _, l := range f.lens {
		sum += l
	}
	blocksStart := fStart - sum
	if isStream {
		ix.IDStart = f.copyEnd + int64(uvarintLen(uint64(f.maxID)))
	} else {
		ix.IDStart = f.copyEnd
	}
	idTextEnd := blocksStart - int64(uvarintLen(uint64(f.total)))
	if f.copyEnd < 7 || ix.IDStart < f.copyEnd || idTextEnd < ix.IDStart || blocksStart < idTextEnd {
		return nil, fmt.Errorf("trace: index: inconsistent section offsets (header %d, ids %d..%d, blocks %d)",
			f.copyEnd, ix.IDStart, idTextEnd, blocksStart)
	}
	if !isStream && idTextEnd != ix.IDStart {
		return nil, fmt.Errorf("trace: index: binary trace claims %d bytes of id text", idTextEnd-ix.IDStart)
	}
	n := len(f.lens)
	ix.Offs = make([]int64, 0, min(n+1, preallocCap))
	ix.Offs = append(ix.Offs, blocksStart)
	off := blocksStart
	for k, l := range f.lens {
		// Every event costs at least a kind byte, a depth varint, and
		// an op-index varint.
		if l < 3*int64(f.counts[k]) {
			return nil, fmt.Errorf("trace: index: block %d length %d too short for %d events", k, l, f.counts[k])
		}
		off += l
		ix.Offs = append(ix.Offs, off)
	}
	ix.Counts = f.counts
	ix.Marks = f.marks
	ix.IDEnds = make([]int64, 0, min(n, preallocCap))
	for k, rel := range f.idEndRel {
		abs := ix.IDStart + rel
		if abs > idTextEnd {
			return nil, fmt.Errorf("trace: index: block %d table watermark %d past id text end %d", k, abs, idTextEnd)
		}
		ix.IDEnds = append(ix.IDEnds, abs)
	}
	return ix, nil
}

// AppendSlicePayload appends to dst a complete, self-contained encoding
// of blocks [b0,b1) of an indexed stream, built purely from byte-range
// copies of enc: the header prefix through the op table verbatim, a
// patched maxid (the slice's id watermark W), the id-text table
// truncated at W's boundary, a patched event count, the raw block
// bytes, and a fresh sub-footer. No event is decoded or re-encoded.
// Refs keep their absolute parent ids — the simulator never inspects
// identifier values, so replaying a slice is equivalent to replaying a
// densely renumbered copy (see SliceStream).
func AppendSlicePayload(dst, enc []byte, ix *Index, b0, b1 int) ([]byte, error) {
	if b0 < 0 || b0 >= b1 || b1 > ix.Blocks() {
		return dst, fmt.Errorf("trace: index: slice blocks [%d,%d) out of range 0..%d", b0, b1, ix.Blocks())
	}
	last := ix.Offs[b1]
	idEnd := ix.IDEnds[b1-1]
	if ix.CopyEnd > ix.IDStart || ix.IDStart > idEnd || idEnd > int64(len(enc)) || last > int64(len(enc)) {
		return dst, fmt.Errorf("trace: index: offsets exceed encoding (%d bytes)", len(enc))
	}
	w := ix.Marks[b1-1]
	count := 0
	for k := b0; k < b1; k++ {
		count += ix.Counts[k]
	}
	dst = append(dst, enc[:ix.CopyEnd]...)
	dst = binary.AppendUvarint(dst, uint64(w))
	dst = append(dst, enc[ix.IDStart:idEnd]...)
	dst = binary.AppendUvarint(dst, uint64(count))
	dst = append(dst, enc[ix.Offs[b0]:last]...)
	// The sub-footer's Offs/IDEnds stay in the parent's frame: only
	// their deltas are serialized, and deltas are frame-invariant.
	return appendIndexFooterBytes(dst, &Index{
		Total:   count,
		MaxID:   w,
		CopyEnd: ix.CopyEnd,
		IDStart: ix.IDStart,
		Offs:    ix.Offs[b0 : b1+1],
		Counts:  ix.Counts[b0:b1],
		Marks:   ix.Marks[b0:b1],
		IDEnds:  ix.IDEnds[b0:b1],
	}), nil
}
