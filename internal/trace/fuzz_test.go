package trace

import (
	"strings"
	"testing"
)

// FuzzRead checks the trace decoder never panics on corrupt input and
// that anything it accepts re-encodes losslessly.
func FuzzRead(f *testing.F) {
	f.Add("# trace x\nP\t1\tcar\ta\t(a b)\n")
	f.Add("E\t1\tf\t2\nX\t1\tf\n")
	f.Add("P\t0\tcons\t(a)\ta\tnil\n")
	f.Add("garbage\nZ\t\t\n")
	f.Add("P\t-1\tcar\t\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded: %q", err, sb.String())
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("event count changed: %d -> %d", len(tr.Events), len(back.Events))
		}
	})
}
