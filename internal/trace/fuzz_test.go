package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the trace decoder never panics on corrupt input, that
// anything it accepts re-encodes losslessly, and that accepted traces
// flow through Preprocess without panicking — the exact path a
// user-supplied trace takes through smalld.
func FuzzRead(f *testing.F) {
	f.Add("# trace x\nP\t1\tcar\ta\t(a b)\n")
	f.Add("E\t1\tf\t2\nX\t1\tf\n")
	f.Add("P\t0\tcons\t(a)\ta\tnil\n")
	f.Add("garbage\nZ\t\t\n")
	f.Add("P\t-1\tcar\t\n")
	f.Add("E\t1\tf\t-3\n")
	f.Add("X\t1\tf\textra\n")
	f.Add("P\t0\t\tres\n")
	f.Add("P\t999999999999999999999\tcar\ta\n")
	f.Add("# trace y\n\n\nP\t3\tcdr\t(b)\t(a b)\t(c)\n")
	f.Add("P\t0\tcar\t(x)\t(x y)\nP\t0\tcdr\t(y)\t(x)\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Read(strings.NewReader(src))
		if err != nil {
			// Rejected input must name the offending line.
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without line number: %v", err)
			}
			return
		}
		for i, ev := range tr.Events {
			if ev.Depth < 0 {
				t.Fatalf("event %d: accepted negative depth %d", i, ev.Depth)
			}
			if ev.NArgs < 0 {
				t.Fatalf("event %d: accepted negative nargs %d", i, ev.NArgs)
			}
			if ev.Op == "" {
				t.Fatalf("event %d: accepted empty op", i)
			}
		}
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded: %q", err, sb.String())
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("event count changed: %d -> %d", len(tr.Events), len(back.Events))
		}
		for i := range back.Events {
			a, b := &tr.Events[i], &back.Events[i]
			if a.Kind != b.Kind || a.Op != b.Op || a.Depth != b.Depth || a.NArgs != b.NArgs {
				t.Fatalf("event %d changed: %+v -> %+v", i, *a, *b)
			}
		}
		// Preprocessing must be total over accepted traces.
		st := Preprocess(tr)
		if len(st.Refs) != len(tr.Events) {
			t.Fatalf("preprocess dropped events: %d -> %d", len(tr.Events), len(st.Refs))
		}
	})
}

// fuzzSeedBinary encodes a small valid trace for seeding the binary
// decoder fuzzers.
func fuzzSeedBinary(f *testing.F) []byte {
	tr := &Trace{Name: "seed", Events: []Event{
		{Kind: KindEnter, Op: "f", NArgs: 1, Depth: 1},
		{Kind: KindPrim, Op: "car", Args: []string{"(a b)"}, Result: "a", Depth: 2},
		{Kind: KindPrim, Op: "read", Result: "(x)", Depth: 2},
		{Kind: KindExit, Op: "f", Depth: 1},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadBinary hammers the "SMTB" decoder with truncated, corrupted,
// and hostile inputs: it must never panic, every rejection must carry a
// byte offset, and anything accepted must re-encode byte-identically and
// survive Preprocess.
func FuzzReadBinary(f *testing.F) {
	seed := fuzzSeedBinary(f)
	f.Add(seed)
	for _, n := range []int{0, 3, 4, 5, 7, len(seed) / 2, len(seed) - 1} {
		if n <= len(seed) {
			f.Add(seed[:n])
		}
	}
	f.Add(append(append([]byte{}, seed...), 0xff))                       // trailing garbage
	f.Add([]byte("SMTB\x63"))                                            // wrong version
	f.Add([]byte("SMRS\x01"))                                            // stream magic fed to trace path (via header check)
	f.Add([]byte("SMTB\x01\xff\xff\xff\xff\xff\xff\xff\xff"))            // giant name length
	huge := append([]byte("SMTB\x01\x00"), 0x80, 0x80, 0x80, 0x80, 0x7f) // huge op count
	f.Add(huge)
	for _, s := range fuzzIndexSeeds(f, seed, fuzzSeedBinaryNoIndex(f)) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "offset ") {
				t.Fatalf("error without byte offset: %v", err)
			}
			return
		}
		// Accepted input must survive an encode/decode cycle losslessly.
		// (Byte-identity is only promised for encoder-produced files —
		// hostile input may use padded varints or unreferenced table
		// entries that a re-encode legitimately drops.)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace fails re-encode: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Name != tr.Name || len(back.Events) != len(tr.Events) {
			t.Fatalf("re-encode changed shape: %q/%d -> %q/%d",
				tr.Name, len(tr.Events), back.Name, len(back.Events))
		}
		for i := range back.Events {
			a, b := &tr.Events[i], &back.Events[i]
			if a.Kind != b.Kind || a.Op != b.Op || a.Result != b.Result ||
				a.Depth != b.Depth || a.NArgs != b.NArgs || len(a.Args) != len(b.Args) {
				t.Fatalf("event %d changed: %+v -> %+v", i, *a, *b)
			}
		}
		st := Preprocess(tr)
		if len(st.Refs) != len(tr.Events) {
			t.Fatalf("preprocess dropped events: %d -> %d", len(tr.Events), len(st.Refs))
		}
	})
}

// fuzzIndexSeeds derives SMTX-footer-targeting seeds from an indexed
// encoding and its unindexed twin: footer truncations and corruptions,
// footer-only tails, and footers grafted where they do not belong.
func fuzzIndexSeeds(f *testing.F, indexed, plain []byte) [][]byte {
	if len(indexed) <= len(plain) || !bytes.HasPrefix(indexed, plain) {
		f.Fatal("indexed seed is not plain seed + footer")
	}
	footer := indexed[len(plain):]
	clone := func(b []byte) []byte { return append([]byte{}, b...) }
	seeds := [][]byte{
		plain,                                     // pre-index back-compat input
		clone(indexed[:len(indexed)-1]),           // trailing magic cut
		clone(indexed[:len(plain)+1]),             // footer cut after 1 byte
		clone(indexed[:len(plain)+len(footer)/2]), // footer cut mid-way
		append(clone(indexed), footer...),         // doubled footer
		append(clone(plain), "SMTX"...),           // bare magic, no body
		append(clone(indexed), 0x00),              // byte after footer
	}
	// Flip the version byte and a length byte inside the footer.
	v := clone(indexed)
	v[len(plain)+4] ^= 0x7f
	seeds = append(seeds, v)
	l := clone(indexed)
	l[len(indexed)-5] ^= 0x01
	seeds = append(seeds, l)
	return seeds
}

// fuzzSeedBinaryNoIndex is fuzzSeedBinary without the SMTX footer.
func fuzzSeedBinaryNoIndex(f *testing.F) []byte {
	tr, err := ReadBinary(bytes.NewReader(fuzzSeedBinary(f)))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryNoIndex(&buf, tr); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedStreamNoIndex is fuzzSeedStream without the SMTX footer.
func fuzzSeedStreamNoIndex(f *testing.F) []byte {
	st, err := ReadStream(bytes.NewReader(fuzzSeedStream(f)))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStreamNoIndex(&buf, st); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedStream encodes a small valid reference stream.
func fuzzSeedStream(f *testing.F) []byte {
	var buf bytes.Buffer
	tr := &Trace{Name: "seed", Events: []Event{
		{Kind: KindEnter, Op: "f", NArgs: 1, Depth: 1},
		{Kind: KindPrim, Op: "car", Args: []string{"(a b)"}, Result: "a", Depth: 2},
		{Kind: KindPrim, Op: "cdr", Args: []string{"(a b)"}, Result: "(b)", Depth: 2},
		{Kind: KindExit, Op: "f", Depth: 1},
	}}
	if err := WriteStream(&buf, Preprocess(tr)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadStream does the same for the "SMRS" reference-stream decoder:
// no panics, offset-carrying rejections, and accepted streams must have
// in-range list ids, re-encode byte-identically, and run through the
// stream analyses without panicking.
func FuzzReadStream(f *testing.F) {
	seed := fuzzSeedStream(f)
	f.Add(seed)
	for _, n := range []int{0, 4, 5, len(seed) / 2, len(seed) - 1} {
		if n <= len(seed) {
			f.Add(seed[:n])
		}
	}
	f.Add(append(append([]byte{}, seed...), 0x00))
	f.Add([]byte("SMRS\x63"))
	f.Add([]byte("SMTB\x01"))
	f.Add([]byte("SMRS\x01\x00\x00\xff\xff\xff\xff\x0f")) // id out of range territory
	for _, s := range fuzzIndexSeeds(f, seed, fuzzSeedStreamNoIndex(f)) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadStream(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "offset ") {
				t.Fatalf("error without byte offset: %v", err)
			}
			return
		}
		for i, r := range st.Refs {
			if r.Result < 0 || r.Result > st.MaxID {
				t.Fatalf("ref %d: accepted out-of-range result id %d (max %d)", i, r.Result, st.MaxID)
			}
			for _, id := range r.Args {
				if id < 0 || id > st.MaxID {
					t.Fatalf("ref %d: accepted out-of-range arg id %d (max %d)", i, id, st.MaxID)
				}
			}
		}
		// Lossless encode/decode cycle, same caveat as FuzzReadBinary:
		// byte-identity is only promised for encoder-produced files.
		var buf bytes.Buffer
		if err := WriteStream(&buf, st); err != nil {
			t.Fatalf("accepted stream fails re-encode: %v", err)
		}
		back, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Name != st.Name || len(back.Refs) != len(st.Refs) || back.MaxID != st.MaxID {
			t.Fatalf("re-encode changed shape: %q/%d/%d -> %q/%d/%d",
				st.Name, len(st.Refs), st.MaxID, back.Name, len(back.Refs), back.MaxID)
		}
		// The stream analyses must be total over accepted streams.
		SummarizeStream(st)
		MeasureNPStream(st)
		Chaining(st)
	})
}
