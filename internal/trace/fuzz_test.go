package trace

import (
	"strings"
	"testing"
)

// FuzzRead checks the trace decoder never panics on corrupt input, that
// anything it accepts re-encodes losslessly, and that accepted traces
// flow through Preprocess without panicking — the exact path a
// user-supplied trace takes through smalld.
func FuzzRead(f *testing.F) {
	f.Add("# trace x\nP\t1\tcar\ta\t(a b)\n")
	f.Add("E\t1\tf\t2\nX\t1\tf\n")
	f.Add("P\t0\tcons\t(a)\ta\tnil\n")
	f.Add("garbage\nZ\t\t\n")
	f.Add("P\t-1\tcar\t\n")
	f.Add("E\t1\tf\t-3\n")
	f.Add("X\t1\tf\textra\n")
	f.Add("P\t0\t\tres\n")
	f.Add("P\t999999999999999999999\tcar\ta\n")
	f.Add("# trace y\n\n\nP\t3\tcdr\t(b)\t(a b)\t(c)\n")
	f.Add("P\t0\tcar\t(x)\t(x y)\nP\t0\tcdr\t(y)\t(x)\n")
	f.Fuzz(func(t *testing.T, src string) {
		tr, err := Read(strings.NewReader(src))
		if err != nil {
			// Rejected input must name the offending line.
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without line number: %v", err)
			}
			return
		}
		for i, ev := range tr.Events {
			if ev.Depth < 0 {
				t.Fatalf("event %d: accepted negative depth %d", i, ev.Depth)
			}
			if ev.NArgs < 0 {
				t.Fatalf("event %d: accepted negative nargs %d", i, ev.NArgs)
			}
			if ev.Op == "" {
				t.Fatalf("event %d: accepted empty op", i)
			}
		}
		var sb strings.Builder
		if err := Write(&sb, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-decode failed: %v\nencoded: %q", err, sb.String())
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("event count changed: %d -> %d", len(tr.Events), len(back.Events))
		}
		for i := range back.Events {
			a, b := &tr.Events[i], &back.Events[i]
			if a.Kind != b.Kind || a.Op != b.Op || a.Depth != b.Depth || a.NArgs != b.NArgs {
				t.Fatalf("event %d changed: %+v -> %+v", i, *a, *b)
			}
		}
		// Preprocessing must be total over accepted traces.
		st := Preprocess(tr)
		if len(st.Refs) != len(tr.Events) {
			t.Fatalf("preprocess dropped events: %d -> %d", len(tr.Events), len(st.Refs))
		}
	})
}
