package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomTrace builds an arbitrary-but-valid trace: nested enters/exits,
// prims with 0..3 args drawn from a small text pool (so the string
// table sees both repeats and variety), including zero-arg reads.
func randomTrace(r *rand.Rand, n int) *Trace {
	pool := []string{"(a b c)", "(b c)", "nil", "a", "(x (y z))", "", "(q)", "42"}
	ops := []string{"car", "cdr", "cons", "rplaca", "read", "member", "fn1", "fn2"}
	tr := &Trace{Name: "rnd"}
	depth := 1
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			tr.Events = append(tr.Events, Event{Kind: KindEnter, Op: ops[6+r.Intn(2)], NArgs: r.Intn(4), Depth: depth})
			depth++
		case 1:
			if depth > 1 {
				depth--
				tr.Events = append(tr.Events, Event{Kind: KindExit, Op: ops[6+r.Intn(2)], Depth: depth})
			}
		default:
			ev := Event{
				Kind: KindPrim, Op: ops[r.Intn(6)],
				Result: pool[r.Intn(len(pool))], Depth: depth,
			}
			for j := r.Intn(4); j > 0; j-- {
				ev.Args = append(ev.Args, pool[r.Intn(len(pool))])
			}
			tr.Events = append(tr.Events, ev)
		}
	}
	return tr
}

func encodeBinary(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	back, err := ReadBinary(bytes.NewReader(encodeBinary(t, tr)))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.Name != tr.Name {
		t.Errorf("Name = %q, want %q", back.Name, tr.Name)
	}
	if !reflect.DeepEqual(normalize(back.Events), normalize(tr.Events)) {
		t.Errorf("events differ:\n got %+v\nwant %+v", back.Events, tr.Events)
	}
}

// TestBinaryRoundTripProperty: for random valid traces, text and binary
// encodings decode to the same events, binary re-encode is
// byte-identical, and the preprocessed streams agree.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, 10+r.Intn(200))

		bin := encodeBinary(t, tr)
		fromBin, err := ReadBinary(bytes.NewReader(bin))
		if err != nil {
			t.Logf("ReadBinary: %v", err)
			return false
		}
		if fromBin.Name != tr.Name ||
			!reflect.DeepEqual(normalize(fromBin.Events), normalize(tr.Events)) {
			t.Logf("binary round trip changed events")
			return false
		}
		// Byte-identical re-encode.
		if !bytes.Equal(encodeBinary(t, fromBin), bin) {
			t.Logf("binary re-encode not byte-identical")
			return false
		}
		// Text and binary decode agree.
		var text bytes.Buffer
		if err := Write(&text, tr); err != nil {
			t.Logf("Write: %v", err)
			return false
		}
		fromText, err := Read(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Logf("Read: %v", err)
			return false
		}
		if !reflect.DeepEqual(normalize(fromText.Events), normalize(fromBin.Events)) {
			t.Logf("text and binary decodes disagree")
			return false
		}
		// Text re-encode is idempotent (Write∘Read fixed point).
		var text2 bytes.Buffer
		if err := Write(&text2, fromText); err != nil {
			t.Logf("re-Write: %v", err)
			return false
		}
		if !bytes.Equal(text2.Bytes(), text.Bytes()) {
			t.Logf("text re-encode not byte-identical:\n got %q\nwant %q", text2.Bytes(), text.Bytes())
			return false
		}
		// Preprocessed streams agree field-for-field.
		stA, stB := Preprocess(tr), Preprocess(fromBin)
		if !reflect.DeepEqual(stA, stB) {
			t.Logf("preprocessed streams disagree")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStreamRoundTripProperty: Preprocess -> WriteStream -> ReadStream
// is lossless and re-encoding is byte-identical.
func TestStreamRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := Preprocess(randomTrace(r, 10+r.Intn(200)))
		var buf bytes.Buffer
		if err := WriteStream(&buf, st); err != nil {
			t.Logf("WriteStream: %v", err)
			return false
		}
		back, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Logf("ReadStream: %v", err)
			return false
		}
		if !reflect.DeepEqual(normalizeStream(back), normalizeStream(st)) {
			t.Logf("stream round trip changed refs:\n got %+v\nwant %+v", back, st)
			return false
		}
		var buf2 bytes.Buffer
		if err := WriteStream(&buf2, back); err != nil {
			t.Logf("re-WriteStream: %v", err)
			return false
		}
		if !bytes.Equal(buf2.Bytes(), buf.Bytes()) {
			t.Logf("stream re-encode not byte-identical")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// normalizeStream maps nil and empty Args/IDText together for comparison.
func normalizeStream(st *Stream) *Stream {
	out := &Stream{Name: st.Name, MaxID: st.MaxID}
	for _, r := range st.Refs {
		if len(r.Args) == 0 {
			r.Args = nil
		}
		out.Refs = append(out.Refs, r)
	}
	for id := 0; id <= st.MaxID; id++ {
		out.IDText = append(out.IDText, st.Text(id))
	}
	return out
}

// TestDecoderStreams: the streaming Decoder yields the same events as
// ReadBinary and reports name/count from the header.
func TestDecoderStreams(t *testing.T) {
	tr := sampleTrace()
	bin := encodeBinary(t, tr)
	d, err := NewDecoder(bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != tr.Name {
		t.Errorf("Name() = %q, want %q", d.Name(), tr.Name)
	}
	if d.Events() != len(tr.Events) {
		t.Errorf("Events() = %d, want %d", d.Events(), len(tr.Events))
	}
	var got []Event
	var ev Event
	for {
		err := d.Next(&ev)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cp := ev
		cp.Args = append([]string(nil), ev.Args...)
		got = append(got, cp)
	}
	if !reflect.DeepEqual(normalize(got), normalize(tr.Events)) {
		t.Errorf("decoder events differ:\n got %+v\nwant %+v", got, tr.Events)
	}
}

// TestStreamAndTraceStatsAgree: SummarizeStream and MeasureNPStream on
// Preprocess(t) match Summarize and MeasureNP on t.
func TestStreamAndTraceStatsAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, 150)
		st := Preprocess(tr)
		a, b := Summarize(tr), SummarizeStream(st)
		if a.Functions != b.Functions || a.Primitives != b.Primitives || a.MaxDepth != b.MaxDepth {
			t.Fatalf("seed %d: stats disagree: %+v vs %+v", seed, a, b)
		}
		if !reflect.DeepEqual(a.PerOp, b.PerOp) {
			t.Fatalf("seed %d: PerOp disagree: %v vs %v", seed, a.PerOp, b.PerOp)
		}
		npA, npB := MeasureNP(tr), MeasureNPStream(st)
		if !reflect.DeepEqual(npA, npB) {
			t.Fatalf("seed %d: NP stats disagree: %+v vs %+v", seed, npA, npB)
		}
	}
}

func TestWriteBinaryRejectsInvalid(t *testing.T) {
	for name, tr := range map[string]*Trace{
		"negative depth": {Events: []Event{{Kind: KindPrim, Op: "car", Depth: -1}}},
		"negative nargs": {Events: []Event{{Kind: KindEnter, Op: "f", NArgs: -2}}},
		"empty op":       {Events: []Event{{Kind: KindPrim, Op: ""}}},
		"tab in op":      {Events: []Event{{Kind: KindPrim, Op: "a\tb"}}},
		"tab in arg":     {Events: []Event{{Kind: KindPrim, Op: "car", Args: []string{"a\tb"}}}},
		"newline name":   {Name: "a\nb"},
		"bad kind":       {Events: []Event{{Kind: Kind(9), Op: "x"}}},
	} {
		if err := WriteBinary(io.Discard, tr); err == nil {
			t.Errorf("%s: WriteBinary accepted invalid trace", name)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	valid := encodeBinary(t, sampleTrace())
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE\x01"),
		"short magic":   []byte("SM"),
		"bad version":   append([]byte("SMTB"), 99),
		"truncated":     valid[:len(valid)/2],
		"trailing data": append(append([]byte{}, valid...), 0xff),
	}
	for name, data := range cases {
		_, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: ReadBinary accepted corrupt input", name)
			continue
		}
		if !strings.Contains(err.Error(), "offset ") {
			t.Errorf("%s: error %q does not carry a byte offset", name, err)
		}
	}
}

func TestReadStreamErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, Preprocess(sampleTrace())); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE\x01"),
		"bad version":   append([]byte("SMRS"), 99),
		"truncated":     valid[:len(valid)/2],
		"trailing data": append(append([]byte{}, valid...), 0xff),
	}
	for name, data := range cases {
		_, err := ReadStream(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: ReadStream accepted corrupt input", name)
			continue
		}
		if !strings.Contains(err.Error(), "offset ") {
			t.Errorf("%s: error %q does not carry a byte offset", name, err)
		}
	}
}

// TestReadAuto sniffs all three formats from the same byte source.
func TestReadAuto(t *testing.T) {
	tr := sampleTrace()
	var text bytes.Buffer
	if err := Write(&text, tr); err != nil {
		t.Fatal(err)
	}
	bin := encodeBinary(t, tr)
	var refs bytes.Buffer
	if err := WriteStream(&refs, Preprocess(tr)); err != nil {
		t.Fatal(err)
	}

	if gt, gs, err := ReadAuto(bytes.NewReader(text.Bytes())); err != nil || gt == nil || gs != nil {
		t.Errorf("text: ReadAuto = (%v, %v, %v)", gt, gs, err)
	}
	gt, gs, err := ReadAuto(bytes.NewReader(bin))
	if err != nil || gt == nil || gs != nil {
		t.Errorf("binary: ReadAuto = (%v, %v, %v)", gt, gs, err)
	} else if !reflect.DeepEqual(normalize(gt.Events), normalize(tr.Events)) {
		t.Error("binary: ReadAuto decoded different events")
	}
	gt, gs, err = ReadAuto(bytes.NewReader(refs.Bytes()))
	if err != nil || gt != nil || gs == nil {
		t.Errorf("refs: ReadAuto = (%v, %v, %v)", gt, gs, err)
	} else if !reflect.DeepEqual(normalizeStream(gs), normalizeStream(Preprocess(tr))) {
		t.Error("refs: ReadAuto decoded different stream")
	}

	for data, want := range map[string]string{
		"SMTBxxx": "binary", "SMRSxxx": "refs", "# trace x\n": "text", "": "text",
	} {
		if got := Sniff([]byte(data)); got != want {
			t.Errorf("Sniff(%q) = %q, want %q", data, got, want)
		}
	}
}

func TestInternOp(t *testing.T) {
	if InternOp("car") != OpCar || InternOp("cdr") != OpCdr || InternOp("cons") != OpCons ||
		InternOp("rplaca") != OpRplaca || InternOp("rplacd") != OpRplacd || InternOp("read") != OpRead {
		t.Fatal("builtin names do not intern to builtin opcodes")
	}
	if InternOp("") != OpNone {
		t.Error("empty name should intern to OpNone")
	}
	a := InternOp("some-user-fn")
	if a == OpNone {
		t.Fatal("dynamic intern returned OpNone")
	}
	if InternOp("some-user-fn") != a {
		t.Error("re-intern returned a different opcode")
	}
	if OpName(a) != "some-user-fn" {
		t.Errorf("OpName round trip = %q", OpName(a))
	}
	if OpName(OpNone) != "?" || OpName(Opcode(1<<30)) != "?" {
		t.Error("OpName of none/out-of-range should be \"?\"")
	}
}
