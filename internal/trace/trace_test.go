package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Events: []Event{
			{Kind: KindEnter, Op: "main", NArgs: 0, Depth: 1},
			{Kind: KindPrim, Op: "car", Args: []string{"(a b c)"}, Result: "a", Depth: 1},
			{Kind: KindPrim, Op: "cdr", Args: []string{"(a b c)"}, Result: "(b c)", Depth: 1},
			{Kind: KindPrim, Op: "car", Args: []string{"(b c)"}, Result: "b", Depth: 1},
			{Kind: KindEnter, Op: "helper", NArgs: 2, Depth: 2},
			{Kind: KindPrim, Op: "cons", Args: []string{"x", "(y)"}, Result: "(x y)", Depth: 2},
			{Kind: KindExit, Op: "helper", Depth: 2},
			{Kind: KindPrim, Op: "rplaca", Args: []string{"(x y)", "z"}, Result: "(z y)", Depth: 1},
			{Kind: KindExit, Op: "main", Depth: 1},
		},
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleTrace())
	if s.Functions != 2 {
		t.Errorf("Functions = %d, want 2", s.Functions)
	}
	if s.Primitives != 5 {
		t.Errorf("Primitives = %d, want 5", s.Primitives)
	}
	if s.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", s.MaxDepth)
	}
	if s.PerOp["car"] != 2 || s.PerOp["cons"] != 1 {
		t.Errorf("PerOp = %v", s.PerOp)
	}
	if got := s.Pct("car"); got != 40 {
		t.Errorf("Pct(car) = %v, want 40", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name {
		t.Errorf("Name = %q, want %q", back.Name, tr.Name)
	}
	if !reflect.DeepEqual(normalize(back.Events), normalize(tr.Events)) {
		t.Errorf("events differ:\n got %+v\nwant %+v", back.Events, tr.Events)
	}
}

// normalize maps nil and empty Args slices together for comparison.
func normalize(evs []Event) []Event {
	out := make([]Event, len(evs))
	for i, e := range evs {
		if len(e.Args) == 0 {
			e.Args = nil
		}
		out[i] = e
	}
	return out
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{
		"Z\t1\tx\n",
		"P\tbad\tcar\ta\n",
		"E\t1\tf\n",
		"E\t1\tf\tx\n",
		"P\t1\n",
		"P\t-1\tcar\ta\n",     // negative depth
		"E\t1\tf\t-2\n",       // negative nargs
		"X\t1\tf\textra\n",    // X record with a stray field
		"P\t2\t\tres\n",       // empty op
		"P\t9\n",              // truncated record
		"E\t0\tf\t3\textra\n", // E record too long
	} {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q): expected error", src)
		}
	}
}

// TestReadErrorNamesLine: decoder errors must carry the 1-based line
// number and the offending field so smalld can report user trace uploads
// precisely.
func TestReadErrorNamesLine(t *testing.T) {
	src := "# trace x\nP\t0\tcar\ta\t(a)\nE\t3\tf\tmany\n"
	_, err := Read(strings.NewReader(src))
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") || !strings.Contains(msg, `"many"`) {
		t.Fatalf("error %q: want line 3 and field \"many\" named", msg)
	}
}

func TestPreprocessIdentifiers(t *testing.T) {
	st := Preprocess(sampleTrace())
	if st.MaxID != 4 { // (a b c), (b c), (y), (x y) -- "(z y)" result... recount
		// identifiers: (a b c)=1, (b c)=2, (y)=3, (x y)=4, (z y)=5
		if st.MaxID != 5 {
			t.Fatalf("MaxID = %d, want 5", st.MaxID)
		}
	}
	prims := filterPrims(st)
	// car (a b c) and cdr (a b c) share an identifier.
	if prims[0].Args[0] != prims[1].Args[0] {
		t.Error("identical list args should share identifiers")
	}
	// car of (b c) chains from cdr's result.
	if !prims[2].Chain {
		t.Error("car (b c) should be chained")
	}
	// atom arg of cons gets identifier 0.
	if prims[3].Args[0] != 0 {
		t.Errorf("atom argument got identifier %d", prims[3].Args[0])
	}
	if prims[3].Result == 0 {
		t.Error("cons result should have a list identifier")
	}
	// first two events are unchained.
	if prims[0].Chain || prims[1].Chain {
		t.Error("unchained events flagged as chained")
	}
}

func filterPrims(st *Stream) []Ref {
	var out []Ref
	for _, r := range st.Refs {
		if r.Kind == RefPrim {
			out = append(out, r)
		}
	}
	return out
}

func TestChaining(t *testing.T) {
	st := Preprocess(sampleTrace())
	cs := Chaining(st)
	// cars: 2 calls, 1 chained -> 50%. cdrs: 1 call, 0 chained -> 0%.
	if cs.CarPct != 50 {
		t.Errorf("CarPct = %v, want 50", cs.CarPct)
	}
	if cs.CdrPct != 0 {
		t.Errorf("CdrPct = %v, want 0", cs.CdrPct)
	}
}

func TestMeasureNP(t *testing.T) {
	st := MeasureNP(sampleTrace())
	// Distinct lists: (a b c) n=3 p=0, (b c) n=2 p=0, (y) n=1 p=0, (x y) n=2 p=0.
	if st.Lists != 4 {
		t.Fatalf("Lists = %d, want 4", st.Lists)
	}
	if st.AvgN != 2 {
		t.Errorf("AvgN = %v, want 2", st.AvgN)
	}
	if st.AvgP != 0 {
		t.Errorf("AvgP = %v, want 0", st.AvgP)
	}
	if st.NDist[2] != 2 {
		t.Errorf("NDist = %v", st.NDist)
	}
}

func TestPreprocessChainNilResult(t *testing.T) {
	// An atom result must not create a chain to a later atom argument.
	tr := &Trace{Events: []Event{
		{Kind: KindPrim, Op: "car", Args: []string{"(a)"}, Result: "a"},
		{Kind: KindPrim, Op: "cons", Args: []string{"a", "nil"}, Result: "(a)"},
	}}
	st := Preprocess(tr)
	prims := filterPrims(st)
	if prims[1].Chain {
		t.Error("atom-result chain falsely detected")
	}
}

func TestPropertyRoundTripRandomTraces(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "rnd"}
		depth := 1
		for i := 0; i < 50; i++ {
			switch r.Intn(3) {
			case 0:
				tr.Events = append(tr.Events, Event{Kind: KindEnter, Op: "f", NArgs: r.Intn(4), Depth: depth})
				depth++
			case 1:
				if depth > 1 {
					depth--
					tr.Events = append(tr.Events, Event{Kind: KindExit, Op: "f", Depth: depth})
				}
			default:
				tr.Events = append(tr.Events, Event{
					Kind: KindPrim, Op: "car",
					Args:   []string{"(a b)"},
					Result: "a", Depth: depth,
				})
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalize(back.Events), normalize(tr.Events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
