// Serialized reference streams ("SMRS", version 1).
//
// Preprocess re-parses and re-interns a trace's s-expression text on
// every load. A Stream written once with WriteStream is memory-loaded
// by ReadStream with no parsing and no interning — reruns of an
// experiment skip Preprocess entirely. The layout mirrors the binary
// trace format (front-loaded tables, varint columns in blocks):
//
//	magic   4 bytes "SMRS"
//	version 1 byte
//	name    uvarint length + bytes
//	ops     uvarint count, then count x (uvarint length + bytes)
//	maxid   uvarint; identifiers are 1..maxid
//	idtext  maxid x (uvarint length + bytes), texts for ids 1..maxid
//	refs    uvarint count
//	blocks, each covering min(1024, remaining) refs:
//	  kinds  one byte per ref: bits 0-1 the RefKind, bit 2 the chaining
//	         flag (RefPrim only), bits 3-7 the argument count n (prim
//	         arg ids / enter nargs); n = 31 means the true count
//	         follows in aux
//	  depths one uvarint per ref
//	  ops    one uvarint per ref (index into the op table)
//	  aux    per ref, in order:
//	    prim : uvarint result id, [uvarint nargs if n = 31],
//	           nargs x uvarint arg id
//	    enter: [uvarint nargs if n = 31]
//	    exit : nothing
//
// Same versioning rule as the binary trace format: layout changes bump
// the version byte; unknown versions are rejected.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"strings"
)

const streamChainBit = 0x04

// WriteStream encodes a preprocessed stream as a .refs file.
func WriteStream(w io.Writer, st *Stream) error {
	if strings.ContainsAny(st.Name, "\n\r") {
		return encErrorf("stream name contains a newline")
	}
	if st.MaxID < 0 {
		return encErrorf("negative MaxID %d", st.MaxID)
	}
	opIdx := make(map[Opcode]uint64)
	var opNames []string
	for i := range st.Refs {
		r := &st.Refs[i]
		if r.Kind > RefExit {
			return encErrorf("ref %d: unknown kind %d", i, r.Kind)
		}
		if r.Depth < 0 {
			return encErrorf("ref %d: negative depth %d", i, r.Depth)
		}
		if r.NArgs < 0 {
			return encErrorf("ref %d: negative nargs %d", i, r.NArgs)
		}
		if r.Result < 0 || r.Result > st.MaxID {
			return encErrorf("ref %d: result id %d out of range 0..%d", i, r.Result, st.MaxID)
		}
		for _, id := range r.Args {
			if id < 0 || id > st.MaxID {
				return encErrorf("ref %d: arg id %d out of range 0..%d", i, id, st.MaxID)
			}
		}
		if _, ok := opIdx[r.Op]; !ok {
			opIdx[r.Op] = uint64(len(opNames))
			opNames = append(opNames, opNameForEncode(r.Op))
		}
	}

	bw := bufio.NewWriter(w)
	scratch := make([]byte, binary.MaxVarintLen64)
	if _, err := bw.Write(magicStream[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(streamVersion); err != nil {
		return err
	}
	if err := writeTableString(bw, scratch, st.Name); err != nil {
		return err
	}
	if err := writeUvarint(bw, scratch, uint64(len(opNames))); err != nil {
		return err
	}
	for _, s := range opNames {
		if err := writeTableString(bw, scratch, s); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, scratch, uint64(st.MaxID)); err != nil {
		return err
	}
	for id := 1; id <= st.MaxID; id++ {
		if err := writeTableString(bw, scratch, st.Text(id)); err != nil {
			return err
		}
	}
	if err := writeUvarint(bw, scratch, uint64(len(st.Refs))); err != nil {
		return err
	}

	for start := 0; start < len(st.Refs); start += blockEvents {
		end := min(start+blockEvents, len(st.Refs))
		block := st.Refs[start:end]
		for i := range block {
			r := &block[i]
			b := byte(r.Kind)
			if r.Chain && r.Kind == RefPrim {
				b |= streamChainBit
			}
			if n := refNArgs(r); n < streamNArgsOverflow {
				b |= byte(n) << streamNArgsShift
			} else {
				b |= streamNArgsOverflow << streamNArgsShift
			}
			if err := bw.WriteByte(b); err != nil {
				return err
			}
		}
		for i := range block {
			if err := writeUvarint(bw, scratch, uint64(block[i].Depth)); err != nil {
				return err
			}
		}
		for i := range block {
			if err := writeUvarint(bw, scratch, opIdx[block[i].Op]); err != nil {
				return err
			}
		}
		for i := range block {
			r := &block[i]
			switch r.Kind {
			case RefPrim:
				if err := writeUvarint(bw, scratch, uint64(r.Result)); err != nil {
					return err
				}
				if n := len(r.Args); n >= streamNArgsOverflow {
					if err := writeUvarint(bw, scratch, uint64(n)); err != nil {
						return err
					}
				}
				for _, id := range r.Args {
					if err := writeUvarint(bw, scratch, uint64(id)); err != nil {
						return err
					}
				}
			case RefEnter:
				if r.NArgs >= streamNArgsOverflow {
					if err := writeUvarint(bw, scratch, uint64(r.NArgs)); err != nil {
						return err
					}
				}
			}
		}
	}
	return bw.Flush()
}

// refNArgs is the argument count packed into a ref's kind byte.
func refNArgs(r *Ref) int {
	switch r.Kind {
	case RefPrim:
		return len(r.Args)
	case RefEnter:
		return r.NArgs
	}
	return 0
}

// streamDecoder carries the offset bookkeeping for ReadStream; it
// reuses the Decoder's primitives with the stream's magic and tables.
type streamDecoder struct{ Decoder }

// ReadStream decodes a .refs file written by WriteStream. Errors carry
// the byte offset of the failure. The decoder is strict — every id,
// op index, and kind is range-checked — because smalld accepts
// user-supplied streams.
func ReadStream(r io.Reader) (*Stream, error) {
	d := &streamDecoder{Decoder{r: r, buf: make([]byte, decodeBufSize)}}
	var magic [4]byte
	got, err := d.readFull(magic[:])
	if err != nil || magic != magicStream {
		return nil, d.errf("not a reference stream (bad magic %q)", magic[:got])
	}
	ver, err := d.readByte()
	if err != nil {
		return nil, d.errf("unexpected EOF reading version")
	}
	if ver != streamVersion {
		return nil, d.errf("unsupported stream version %d (want %d)", ver, streamVersion)
	}
	st := &Stream{}
	if st.Name, err = d.readTableString("stream name", maxNameLen); err != nil {
		return nil, err
	}
	nops, err := d.readCount("op table count", maxTableCount)
	if err != nil {
		return nil, err
	}
	opNames, err := d.readTable("op name", nops, maxOpLen, true)
	if err != nil {
		return nil, err
	}
	ops := make([]Opcode, len(opNames))
	for i, s := range opNames {
		ops[i] = InternOp(s)
	}
	if st.MaxID, err = d.readCount("max identifier", maxTableCount); err != nil {
		return nil, err
	}
	idtext, err := d.readTable("identifier text", st.MaxID, maxStrLen, true)
	if err != nil {
		return nil, err
	}
	st.IDText = make([]string, 1, len(idtext)+1)
	st.IDText = append(st.IDText, idtext...)
	nrefs, err := d.readCount("ref count", maxEventCount)
	if err != nil {
		return nil, err
	}
	st.Refs = make([]Ref, 0, min(nrefs, preallocCap))

	readID := func(what string) (int, error) {
		v, err := d.readUvarint(what)
		if err != nil {
			return 0, err
		}
		if v > uint64(st.MaxID) {
			return 0, d.errf("%s %d out of range 0..%d", what, v, st.MaxID)
		}
		return int(v), nil
	}

	var arena []int // chunked backing storage for ref Args
	var kinds [blockEvents]byte
	var depths [blockEvents]int64
	var opix [blockEvents]uint32
	remaining := nrefs
	for remaining > 0 {
		n := min(blockEvents, remaining)
		got, err := d.readFull(kinds[:n])
		if err != nil {
			return nil, d.errf("unexpected EOF reading kind column (%d of %d bytes)", got, n)
		}
		for i := 0; i < n; i++ {
			kb := kinds[i]
			kind := kb & kindMask
			if kind > byte(RefExit) ||
				(kb&streamChainBit != 0 && kind != byte(RefPrim)) ||
				(kind == byte(RefExit) && kb>>streamNArgsShift != 0) {
				return nil, d.errf("bad ref kind byte %#x", kb)
			}
		}
		for i := 0; i < n; i++ {
			v, err := d.readUvarint("depth")
			if err != nil {
				return nil, err
			}
			if v > maxDepth {
				return nil, d.errf("depth %d exceeds limit %d", v, int64(maxDepth))
			}
			depths[i] = int64(v)
		}
		for i := 0; i < n; i++ {
			v, err := d.readUvarint("op index")
			if err != nil {
				return nil, err
			}
			if v >= uint64(len(ops)) {
				return nil, d.errf("op index %d out of range (table has %d)", v, len(ops))
			}
			opix[i] = uint32(v)
		}
		for i := 0; i < n; i++ {
			kb := kinds[i]
			nargs := int(kb >> streamNArgsShift)
			rf := Ref{
				Kind:  RefKind(kb & kindMask),
				Chain: kb&streamChainBit != 0,
				Op:    ops[opix[i]],
				Depth: int(depths[i]),
			}
			switch rf.Kind {
			case RefPrim:
				if rf.Result, err = readID("result id"); err != nil {
					return nil, err
				}
				if nargs == streamNArgsOverflow {
					if nargs, err = d.readCount("argument count", maxEventArgs); err != nil {
						return nil, err
					}
				}
				if nargs > 0 {
					if len(arena)+nargs > cap(arena) {
						arena = make([]int, 0, max(4*blockEvents, nargs))
					}
					start := len(arena)
					for j := 0; j < nargs; j++ {
						id, err := readID("arg id")
						if err != nil {
							return nil, err
						}
						arena = append(arena, id)
					}
					rf.Args = arena[start:len(arena):len(arena)]
				}
			case RefEnter:
				if nargs == streamNArgsOverflow {
					if nargs, err = d.readCount("nargs", maxEventArgs); err != nil {
						return nil, err
					}
				}
				rf.NArgs = nargs
			}
			st.Refs = append(st.Refs, rf)
			d.event++
		}
		remaining -= n
	}
	if _, err := d.readByte(); err != io.EOF {
		return nil, d.errf("trailing data after %d refs", nrefs)
	}
	return st, nil
}

// ReadAuto decodes a trace file in any supported format, sniffing the
// leading magic bytes: "SMTB" binary traces, "SMRS" reference streams,
// anything else the text format. Exactly one of the returns is non-nil
// on success; a .refs input yields only the Stream (the original text
// is not recoverable, and consumers of streams do not need it).
func ReadAuto(r io.Reader) (*Trace, *Stream, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err == nil {
		switch {
		case bytes.Equal(magic, magicTrace[:]):
			t, err := ReadBinary(br)
			return t, nil, err
		case bytes.Equal(magic, magicStream[:]):
			st, err := ReadStream(br)
			return nil, st, err
		}
	}
	t, err := Read(br)
	return t, nil, err
}

// Sniff reports the format of the leading bytes of a trace file:
// "binary", "refs", or "text".
func Sniff(prefix []byte) string {
	switch {
	case bytes.HasPrefix(prefix, magicTrace[:]):
		return "binary"
	case bytes.HasPrefix(prefix, magicStream[:]):
		return "refs"
	default:
		return "text"
	}
}
