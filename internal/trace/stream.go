// Serialized reference streams ("SMRS", version 1).
//
// Preprocess re-parses and re-interns a trace's s-expression text on
// every load. A Stream written once with WriteStream is memory-loaded
// by ReadStream with no parsing and no interning — reruns of an
// experiment skip Preprocess entirely. The layout mirrors the binary
// trace format (front-loaded tables, varint columns in blocks):
//
//	magic   4 bytes "SMRS"
//	version 1 byte
//	name    uvarint length + bytes
//	ops     uvarint count, then count x (uvarint length + bytes)
//	maxid   uvarint; identifiers are 1..maxid
//	idtext  maxid x (uvarint length + bytes), texts for ids 1..maxid
//	refs    uvarint count
//	blocks, each covering min(1024, remaining) refs:
//	  kinds  one byte per ref: bits 0-1 the RefKind, bit 2 the chaining
//	         flag (RefPrim only), bits 3-7 the argument count n (prim
//	         arg ids / enter nargs); n = 31 means the true count
//	         follows in aux
//	  depths one uvarint per ref
//	  ops    one uvarint per ref (index into the op table)
//	  aux    per ref, in order:
//	    prim : uvarint result id, [uvarint nargs if n = 31],
//	           nargs x uvarint arg id
//	    enter: [uvarint nargs if n = 31]
//	    exit : nothing
//
// Same versioning rule as the binary trace format: layout changes bump
// the version byte; unknown versions are rejected.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"strings"
)

const streamChainBit = 0x04

// WriteStream encodes a preprocessed stream as a .refs file with an
// SMTX index footer.
func WriteStream(w io.Writer, st *Stream) error {
	return writeStream(w, st, true)
}

// WriteStreamNoIndex encodes st without the SMTX footer — the
// pre-index v1 layout, byte-for-byte.
func WriteStreamNoIndex(w io.Writer, st *Stream) error {
	return writeStream(w, st, false)
}

func writeStream(w io.Writer, st *Stream, withIndex bool) error {
	if strings.ContainsAny(st.Name, "\n\r") {
		return encErrorf("stream name contains a newline")
	}
	if st.MaxID < 0 {
		return encErrorf("negative MaxID %d", st.MaxID)
	}
	opIdx := make(map[Opcode]uint64)
	var opNames []string
	for i := range st.Refs {
		r := &st.Refs[i]
		if r.Kind > RefExit {
			return encErrorf("ref %d: unknown kind %d", i, r.Kind)
		}
		if r.Depth < 0 {
			return encErrorf("ref %d: negative depth %d", i, r.Depth)
		}
		if r.NArgs < 0 {
			return encErrorf("ref %d: negative nargs %d", i, r.NArgs)
		}
		if r.Result < 0 || r.Result > st.MaxID {
			return encErrorf("ref %d: result id %d out of range 0..%d", i, r.Result, st.MaxID)
		}
		for _, id := range r.Args {
			if id < 0 || id > st.MaxID {
				return encErrorf("ref %d: arg id %d out of range 0..%d", i, id, st.MaxID)
			}
		}
		if _, ok := opIdx[r.Op]; !ok {
			opIdx[r.Op] = uint64(len(opNames))
			opNames = append(opNames, opNameForEncode(r.Op))
		}
	}

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	off := func() int64 { return cw.n + int64(bw.Buffered()) }
	scratch := make([]byte, binary.MaxVarintLen64)
	if _, err := bw.Write(magicStream[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(streamVersion); err != nil {
		return err
	}
	if err := writeTableString(bw, scratch, st.Name); err != nil {
		return err
	}
	if err := writeUvarint(bw, scratch, uint64(len(opNames))); err != nil {
		return err
	}
	for _, s := range opNames {
		if err := writeTableString(bw, scratch, s); err != nil {
			return err
		}
	}
	copyEnd := off()
	if err := writeUvarint(bw, scratch, uint64(st.MaxID)); err != nil {
		return err
	}
	idStart := off()
	// Streams too large for a decodable footer are emitted un-indexed.
	withIndex = withIndex && st.MaxID <= maxTableCount && len(st.Refs) <= maxEventCount
	var idEnd []int64 // idEnd[w]: byte offset just past id-text entry w
	if withIndex {
		idEnd = make([]int64, 1, min(st.MaxID, maxTableCount)+1)
		idEnd[0] = idStart
	}
	for id := 1; id <= st.MaxID; id++ {
		if err := writeTableString(bw, scratch, st.Text(id)); err != nil {
			return err
		}
		if withIndex {
			idEnd = append(idEnd, off())
		}
	}
	if err := writeUvarint(bw, scratch, uint64(len(st.Refs))); err != nil {
		return err
	}
	ix := &Index{Total: len(st.Refs), MaxID: st.MaxID, CopyEnd: copyEnd, IDStart: idStart}
	if withIndex {
		nb := blockCountOf(len(st.Refs))
		ix.Offs = append(make([]int64, 0, min(nb, maxIndexBlocks)+1), off())
		ix.Counts = make([]int, 0, min(nb, maxIndexBlocks))
		ix.Marks = make([]int, 0, min(nb, maxIndexBlocks))
		ix.IDEnds = make([]int64, 0, min(nb, maxIndexBlocks))
	}
	runMax := 0

	for start := 0; start < len(st.Refs); start += blockEvents {
		end := min(start+blockEvents, len(st.Refs))
		block := st.Refs[start:end]
		for i := range block {
			r := &block[i]
			b := byte(r.Kind)
			if r.Chain && r.Kind == RefPrim {
				b |= streamChainBit
			}
			if n := refNArgs(r); n < streamNArgsOverflow {
				b |= byte(n) << streamNArgsShift
			} else {
				b |= streamNArgsOverflow << streamNArgsShift
			}
			if err := bw.WriteByte(b); err != nil {
				return err
			}
		}
		for i := range block {
			if err := writeUvarint(bw, scratch, uint64(block[i].Depth)); err != nil {
				return err
			}
		}
		for i := range block {
			if err := writeUvarint(bw, scratch, opIdx[block[i].Op]); err != nil {
				return err
			}
		}
		for i := range block {
			r := &block[i]
			switch r.Kind {
			case RefPrim:
				runMax = max(runMax, r.Result)
				if err := writeUvarint(bw, scratch, uint64(r.Result)); err != nil {
					return err
				}
				if n := len(r.Args); n >= streamNArgsOverflow {
					if err := writeUvarint(bw, scratch, uint64(n)); err != nil {
						return err
					}
				}
				for _, id := range r.Args {
					runMax = max(runMax, id)
					if err := writeUvarint(bw, scratch, uint64(id)); err != nil {
						return err
					}
				}
			case RefEnter:
				if r.NArgs >= streamNArgsOverflow {
					if err := writeUvarint(bw, scratch, uint64(r.NArgs)); err != nil {
						return err
					}
				}
			}
		}
		if withIndex {
			ix.Offs = append(ix.Offs, off())
			ix.Counts = append(ix.Counts, end-start)
			ix.Marks = append(ix.Marks, runMax)
			ix.IDEnds = append(ix.IDEnds, idEnd[runMax])
		}
	}
	if withIndex {
		if _, err := bw.Write(appendIndexFooterBytes(nil, ix)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// refNArgs is the argument count packed into a ref's kind byte.
func refNArgs(r *Ref) int {
	switch r.Kind {
	case RefPrim:
		return len(r.Args)
	case RefEnter:
		return r.NArgs
	}
	return 0
}

// streamDecoder carries the offset bookkeeping for ReadStream; it
// reuses the Decoder's primitives with the stream's magic and tables.
type streamDecoder struct{ Decoder }

// readStreamHeader decodes the front-loaded header of an SMRS stream —
// name, op table, maxid, id texts, ref count — and reports the section
// offsets the SMTX index describes: copyEnd is the end of the verbatim
// prefix (through the op table), idStart the first id-text byte.
func readStreamHeader(d *streamDecoder) (st *Stream, ops []Opcode, copyEnd, idStart int64, nrefs int, err error) {
	var magic [4]byte
	got, err := d.readFull(magic[:])
	if err != nil || magic != magicStream {
		return nil, nil, 0, 0, 0, d.errf("not a reference stream (bad magic %q)", magic[:got])
	}
	ver, err := d.readByte()
	if err != nil {
		return nil, nil, 0, 0, 0, d.errf("unexpected EOF reading version")
	}
	if ver != streamVersion {
		return nil, nil, 0, 0, 0, d.errf("unsupported stream version %d (want %d)", ver, streamVersion)
	}
	st = &Stream{}
	if st.Name, err = d.readTableString("stream name", maxNameLen); err != nil {
		return nil, nil, 0, 0, 0, err
	}
	nops, err := d.readCount("op table count", maxTableCount)
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	opNames, err := d.readTable("op name", nops, maxOpLen, true)
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	ops = make([]Opcode, len(opNames))
	for i, s := range opNames {
		ops[i] = InternOp(s)
	}
	copyEnd = d.off
	if st.MaxID, err = d.readCount("max identifier", maxTableCount); err != nil {
		return nil, nil, 0, 0, 0, err
	}
	idStart = d.off
	idtext, err := d.readTable("identifier text", st.MaxID, maxStrLen, true)
	if err != nil {
		return nil, nil, 0, 0, 0, err
	}
	st.IDText = make([]string, 1, len(idtext)+1)
	st.IDText = append(st.IDText, idtext...)
	if nrefs, err = d.readCount("ref count", maxEventCount); err != nil {
		return nil, nil, 0, 0, 0, err
	}
	return st, ops, copyEnd, idStart, nrefs, nil
}

// BlockScratch holds the column arrays used while decoding one ref
// block. Callers that decode block after block (the scanner, the
// prefetcher) allocate one and reuse it across calls.
type BlockScratch struct {
	kinds  [blockEvents]byte
	depths [blockEvents]int64
	opix   [blockEvents]uint32
}

// decodeBlock decodes one n-ref column block from d, appending refs to
// refs and arg ids to the chunked arena. Every id is range-checked
// against maxID and every op index against the table — this is the
// decode loop ReadStream always ran, factored out so seekable block
// readers share it. maxSeen reports the largest id referenced.
func (bs *BlockScratch) decodeBlock(d *streamDecoder, ops []Opcode, maxID, n int, refs []Ref, arena []int) (_ []Ref, _ []int, maxSeen int, err error) {
	got, err := d.readFull(bs.kinds[:n])
	if err != nil {
		return refs, arena, 0, d.errf("unexpected EOF reading kind column (%d of %d bytes)", got, n)
	}
	for i := 0; i < n; i++ {
		kb := bs.kinds[i]
		kind := kb & kindMask
		if kind > byte(RefExit) ||
			(kb&streamChainBit != 0 && kind != byte(RefPrim)) ||
			(kind == byte(RefExit) && kb>>streamNArgsShift != 0) {
			return refs, arena, 0, d.errf("bad ref kind byte %#x", kb)
		}
	}
	for i := 0; i < n; i++ {
		v, err := d.readUvarint("depth")
		if err != nil {
			return refs, arena, 0, err
		}
		if v > maxDepth {
			return refs, arena, 0, d.errf("depth %d exceeds limit %d", v, int64(maxDepth))
		}
		bs.depths[i] = int64(v)
	}
	for i := 0; i < n; i++ {
		v, err := d.readUvarint("op index")
		if err != nil {
			return refs, arena, 0, err
		}
		if v >= uint64(len(ops)) {
			return refs, arena, 0, d.errf("op index %d out of range (table has %d)", v, len(ops))
		}
		bs.opix[i] = uint32(v)
	}
	readID := func(what string) (int, error) {
		v, err := d.readUvarint(what)
		if err != nil {
			return 0, err
		}
		if v > uint64(maxID) {
			return 0, d.errf("%s %d out of range 0..%d", what, v, maxID)
		}
		return int(v), nil
	}
	for i := 0; i < n; i++ {
		kb := bs.kinds[i]
		nargs := int(kb >> streamNArgsShift)
		rf := Ref{
			Kind:  RefKind(kb & kindMask),
			Chain: kb&streamChainBit != 0,
			Op:    ops[bs.opix[i]],
			Depth: int(bs.depths[i]),
		}
		switch rf.Kind {
		case RefPrim:
			if rf.Result, err = readID("result id"); err != nil {
				return refs, arena, 0, err
			}
			maxSeen = max(maxSeen, rf.Result)
			if nargs == streamNArgsOverflow {
				if nargs, err = d.readCount("argument count", maxEventArgs); err != nil {
					return refs, arena, 0, err
				}
			}
			if nargs > 0 {
				if len(arena)+nargs > cap(arena) {
					arena = make([]int, 0, max(4*blockEvents, nargs))
				}
				start := len(arena)
				for j := 0; j < nargs; j++ {
					id, err := readID("arg id")
					if err != nil {
						return refs, arena, 0, err
					}
					maxSeen = max(maxSeen, id)
					arena = append(arena, id)
				}
				rf.Args = arena[start:len(arena):len(arena)]
			}
		case RefEnter:
			if nargs == streamNArgsOverflow {
				if nargs, err = d.readCount("nargs", maxEventArgs); err != nil {
					return refs, arena, 0, err
				}
			}
			rf.NArgs = nargs
		}
		refs = append(refs, rf)
		d.event++
	}
	return refs, arena, maxSeen, nil
}

// recordingReader keeps a copy of every byte read through it, so a
// streaming consumer can hand out byte-range slices of an upload while
// it is still arriving. Earlier slices of buf stay valid across growth:
// append may move the backing array but never mutates handed-out
// prefixes.
type recordingReader struct {
	r   io.Reader
	buf []byte
}

func (rr *recordingReader) Read(p []byte) (int, error) {
	n, err := rr.r.Read(p)
	rr.buf = append(rr.buf, p[:n]...)
	return n, err
}

// StreamScanner decodes an SMRS stream one block at a time, building
// the same per-block bookkeeping an SMTX footer carries (byte offsets,
// counts, id and table watermarks) as it goes. ReadStream is a Scan
// loop; the ingest layer scans uploads block by block and dispatches
// shards while the body is still arriving. If the input ends in an
// SMTX footer, the final Scan verifies every claim it makes against
// the recorded actuals.
//
// A StreamScanner is confined to one goroutine: no field is mutex
// guarded, and concurrent shard work must share only the immutable
// snapshots (Raw prefixes, IndexSnapshot copies, SubStream views) it
// hands out — the confinement-by-snapshot discipline the ingest
// dispatcher relies on.
type StreamScanner struct {
	d         streamDecoder
	bs        BlockScratch
	st        *Stream
	ops       []Opcode
	nrefs     int
	remaining int
	copyEnd   int64
	idStart   int64
	offs      []int64
	counts    []int
	marks     []int
	idEnds    []int64
	runMax    int
	idCum     []int64 // lazy: bytes of id-text entries 1..m, cumulative
	arena     []int
	rec       *recordingReader
	done      bool
}

// NewStreamScanner reads the stream header and prepares to scan
// blocks. With keepRaw, every byte read is retained and Raw() exposes
// the prefix read so far — the basis for zero-copy shard slicing.
func NewStreamScanner(r io.Reader, keepRaw bool) (*StreamScanner, error) {
	sc := &StreamScanner{}
	if keepRaw {
		sc.rec = &recordingReader{r: r}
		r = sc.rec
	}
	sc.d = streamDecoder{Decoder{r: r, buf: make([]byte, decodeBufSize)}}
	st, ops, copyEnd, idStart, nrefs, err := readStreamHeader(&sc.d)
	if err != nil {
		return nil, err
	}
	sc.st, sc.ops = st, ops
	sc.copyEnd, sc.idStart, sc.nrefs = copyEnd, idStart, nrefs
	sc.remaining = nrefs
	st.Refs = make([]Ref, 0, min(nrefs, preallocCap))
	nb := blockCountOf(nrefs)
	sc.offs = append(make([]int64, 0, min(nb+1, preallocCap)), sc.d.off)
	sc.counts = make([]int, 0, min(nb, preallocCap))
	sc.marks = make([]int, 0, min(nb, preallocCap))
	sc.idEnds = make([]int64, 0, min(nb, preallocCap))
	return sc, nil
}

// idCumTo is the byte length of id-text entries 1..m as encoded; built
// once, on first use, from the decoded texts.
func (sc *StreamScanner) idCumTo(m int) int64 {
	if sc.idCum == nil {
		cum := make([]int64, 1, min(sc.st.MaxID, maxTableCount)+1)
		for id := 1; id <= sc.st.MaxID; id++ {
			t := sc.st.IDText[id]
			cum = append(cum, cum[id-1]+int64(uvarintLen(uint64(len(t))))+int64(len(t)))
		}
		sc.idCum = cum
	}
	return sc.idCum[m]
}

// Scan decodes the next block, appending its refs to Stream().Refs,
// and returns the number of refs decoded. After the last block it
// consumes and verifies the optional SMTX footer, checks for trailing
// garbage, and returns io.EOF.
func (sc *StreamScanner) Scan() (int, error) {
	if sc.done {
		return 0, io.EOF
	}
	if sc.remaining == 0 {
		sc.done = true
		if err := sc.d.verifyTrailer("refs", sc.nrefs, sc.st.MaxID, sc.copyEnd, sc.idStart,
			sc.offs, sc.marks, func(mark int) int64 { return sc.idStart + sc.idCumTo(mark) }); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	n := min(blockEvents, sc.remaining)
	refs, arena, maxSeen, err := sc.bs.decodeBlock(&sc.d, sc.ops, sc.st.MaxID, n, sc.st.Refs, sc.arena)
	sc.st.Refs, sc.arena = refs, arena
	if err != nil {
		return 0, err
	}
	sc.runMax = max(sc.runMax, maxSeen)
	sc.remaining -= n
	sc.offs = append(sc.offs, sc.d.off)
	sc.counts = append(sc.counts, n)
	sc.marks = append(sc.marks, sc.runMax)
	sc.idEnds = append(sc.idEnds, sc.idStart+sc.idCumTo(sc.runMax))
	return n, nil
}

// Stream returns the decoded stream: header fields are complete after
// NewStreamScanner, Refs grows with each Scan. Sub-slices of Refs taken
// between Scans stay valid as the slice grows.
func (sc *StreamScanner) Stream() *Stream { return sc.st }

// Refs is the total ref count declared by the header.
func (sc *StreamScanner) Refs() int { return sc.nrefs }

// Blocks is the number of blocks decoded so far.
func (sc *StreamScanner) Blocks() int { return len(sc.counts) }

// Offset is the number of input bytes consumed so far.
func (sc *StreamScanner) Offset() int64 { return sc.d.off }

// Raw returns the bytes read so far (keepRaw scanners only). The
// prefix covering any decoded block is complete: the decoder never
// consumes a byte it has not read.
func (sc *StreamScanner) Raw() []byte {
	if sc.rec == nil {
		return nil
	}
	return sc.rec.buf
}

// IndexSnapshot returns an Index over the blocks decoded so far. The
// slices alias the scanner's growing arrays: entries present at call
// time are immutable, so a snapshot taken after Scan k stays valid
// while scanning continues.
func (sc *StreamScanner) IndexSnapshot() Index {
	return Index{
		Total:   len(sc.st.Refs),
		MaxID:   sc.st.MaxID,
		CopyEnd: sc.copyEnd,
		IDStart: sc.idStart,
		Offs:    sc.offs,
		Counts:  sc.counts,
		Marks:   sc.marks,
		IDEnds:  sc.idEnds,
	}
}

// ReadStream decodes a .refs file written by WriteStream. Errors carry
// the byte offset of the failure. The decoder is strict — every id,
// op index, and kind is range-checked — because smalld accepts
// user-supplied streams.
func ReadStream(r io.Reader) (*Stream, error) {
	sc, err := NewStreamScanner(r, false)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := sc.Scan(); err != nil {
			if err == io.EOF {
				return sc.st, nil
			}
			return nil, err
		}
	}
}

// ReadAuto decodes a trace file in any supported format, sniffing the
// leading magic bytes: "SMTB" binary traces, "SMRS" reference streams,
// anything else the text format. Exactly one of the returns is non-nil
// on success; a .refs input yields only the Stream (the original text
// is not recoverable, and consumers of streams do not need it).
func ReadAuto(r io.Reader) (*Trace, *Stream, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	if err == nil {
		switch {
		case bytes.Equal(magic, magicTrace[:]):
			t, err := ReadBinary(br)
			return t, nil, err
		case bytes.Equal(magic, magicStream[:]):
			st, err := ReadStream(br)
			return nil, st, err
		}
	}
	t, err := Read(br)
	return t, nil, err
}

// Sniff reports the format of the leading bytes of a trace file:
// "binary", "refs", or "text".
func Sniff(prefix []byte) string {
	switch {
	case bytes.HasPrefix(prefix, magicTrace[:]):
		return "binary"
	case bytes.HasPrefix(prefix, magicStream[:]):
		return "refs"
	default:
		return "text"
	}
}
