package trace

import (
	"strings"
	"sync"
)

// Opcode is an interned primitive or user-function name. The zero value
// OpNone means "no op" (an empty name, or a name dropped because the
// table hit its cap). Opcodes are process-global: the same name interns
// to the same opcode in every trace, so the simulator's event loop and
// the locality analyses dispatch on small integer compares instead of
// string compares, and decoded streams share one canonical string per
// name instead of one copy per event.
type Opcode uint32

// Builtin opcodes for the primitives the Chapter 5 simulator dispatches
// on. Every other name (user functions, rare primitives) gets a dynamic
// opcode from InternOp.
const (
	OpNone Opcode = iota
	OpCar
	OpCdr
	OpCons
	OpRplaca
	OpRplacd
	OpRead
)

// opTableCap bounds the global table so a hostile trace flood (smalld
// accepts user traces) cannot grow it without bound. Names interned
// beyond the cap collapse to OpNone; the analyses only distinguish the
// builtin primitives, so this degrades names, not results.
const opTableCap = 1 << 20

// opTableState is the process-wide opcode intern table. It is hit
// from every decoder goroutine at once, so its fields carry the
// `guarded by mu` convention smallvet's lockguard enforces.
type opTableState struct {
	mu sync.RWMutex
	// byName maps interned names to their opcodes.
	// guarded by mu
	byName map[string]Opcode
	// names lists interned names indexed by opcode.
	// guarded by mu
	names []string
}

var opTable = opTableState{
	byName: map[string]Opcode{
		"car": OpCar, "cdr": OpCdr, "cons": OpCons,
		"rplaca": OpRplaca, "rplacd": OpRplacd, "read": OpRead,
	},
	names: []string{"", "car", "cdr", "cons", "rplaca", "rplacd", "read"},
}

// InternOp returns the opcode for name, assigning a new one on first
// use. Safe for concurrent use.
func InternOp(name string) Opcode {
	if name == "" {
		return OpNone
	}
	opTable.mu.RLock()
	c, ok := opTable.byName[name]
	opTable.mu.RUnlock()
	if ok {
		return c
	}
	opTable.mu.Lock()
	defer opTable.mu.Unlock()
	if c, ok := opTable.byName[name]; ok {
		return c
	}
	if len(opTable.names) >= opTableCap {
		return OpNone
	}
	c = Opcode(len(opTable.names))
	// Clone so an interned name never pins a decoder's input buffer.
	name = strings.Clone(name)
	opTable.names = append(opTable.names, name)
	opTable.byName[name] = c
	return c
}

// OpName returns the canonical name for an opcode. OpNone and
// out-of-range codes render as "?" so error messages stay readable.
func OpName(c Opcode) string {
	if c == OpNone {
		return "?"
	}
	opTable.mu.RLock()
	defer opTable.mu.RUnlock()
	if int(c) < len(opTable.names) {
		return opTable.names[c]
	}
	return "?"
}

// opNameForEncode is OpName but renders OpNone as the empty string, the
// form the stream codec stores (and InternOp maps back to OpNone).
func opNameForEncode(c Opcode) string {
	if c == OpNone {
		return ""
	}
	return OpName(c)
}
