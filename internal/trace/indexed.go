// Seekable decoding of indexed SMRS streams.
//
// An IndexedStream wraps a complete in-memory encoding whose SMTX
// footer has been parsed: the header decodes once, and any block is
// then decodable directly from its byte range with no sequential scan.
// BlockPrefetcher layers double buffering on top — a producer
// goroutine decodes block k+1 while the consumer simulates block k, so
// replay and decode overlap instead of serializing.
package trace

import (
	"bytes"
	"fmt"
	"io"
)

// IndexedStream is a random-access view over an indexed SMRS encoding.
// The header (name, ops, id texts) is decoded eagerly and strictly;
// blocks decode on demand via DecodeBlock.
type IndexedStream struct {
	enc []byte
	ix  *Index
	st  *Stream // header only: Refs stays empty
	ops []Opcode
}

// OpenIndexedStream parses the footer and header of a complete SMRS
// encoding and cross-checks them against each other. It fails if the
// bytes carry no footer — callers fall back to ReadStream.
func OpenIndexedStream(enc []byte) (*IndexedStream, error) {
	if !bytes.HasPrefix(enc, magicStream[:]) {
		return nil, fmt.Errorf("trace: index: not a reference stream")
	}
	ix, err := ParseIndex(enc)
	if err != nil {
		return nil, err
	}
	if ix == nil {
		return nil, fmt.Errorf("trace: index: stream has no SMTX footer")
	}
	d := &streamDecoder{*newBytesDecoder(enc, 0)}
	st, ops, copyEnd, idStart, nrefs, err := readStreamHeader(d)
	if err != nil {
		return nil, err
	}
	// The header and the footer describe the same bytes; disagreement
	// means a forged or stale index.
	if nrefs != ix.Total || st.MaxID != ix.MaxID || copyEnd != ix.CopyEnd || idStart != ix.IDStart {
		return nil, fmt.Errorf("trace: index: footer disagrees with header (%d/%d refs, %d/%d ids, prefix %d/%d, ids at %d/%d)",
			ix.Total, nrefs, ix.MaxID, st.MaxID, ix.CopyEnd, copyEnd, ix.IDStart, idStart)
	}
	if d.off != ix.Offs[0] {
		return nil, fmt.Errorf("trace: index: blocks start at %d, header ends at %d", ix.Offs[0], d.off)
	}
	return &IndexedStream{enc: enc, ix: ix, st: st, ops: ops}, nil
}

// Index returns the parsed footer.
func (is *IndexedStream) Index() *Index { return is.ix }

// Header returns the decoded header as a Stream with no refs: name,
// MaxID, and id texts are populated.
func (is *IndexedStream) Header() *Stream { return is.st }

// Blocks is the number of event blocks.
func (is *IndexedStream) Blocks() int { return is.ix.Blocks() }

// Refs is the total ref count.
func (is *IndexedStream) Refs() int { return is.ix.Total }

// DecodeBlock decodes block k into refs (appending, typically to a
// recycled buffer sliced to zero). The block must consume exactly its
// indexed byte range, carry exactly its indexed count, and reference
// no id above its indexed watermark — a lying index is an error, not
// a misread.
func (is *IndexedStream) DecodeBlock(k int, bs *BlockScratch, refs []Ref, arena []int) ([]Ref, []int, error) {
	if k < 0 || k >= is.ix.Blocks() {
		return refs, arena, fmt.Errorf("trace: index: block %d out of range 0..%d", k, is.ix.Blocks())
	}
	a, b := is.ix.Offs[k], is.ix.Offs[k+1]
	d := &streamDecoder{*newBytesDecoder(is.enc[a:b], a)}
	d.event = k * blockEvents
	n := is.ix.Counts[k]
	refs, arena, maxSeen, err := bs.decodeBlock(d, is.ops, is.st.MaxID, n, refs, arena)
	if err != nil {
		return refs, arena, err
	}
	if maxSeen > is.ix.Marks[k] {
		return refs, arena, d.errf("block %d references id %d above index watermark %d", k, maxSeen, is.ix.Marks[k])
	}
	if _, err := d.readByte(); err != io.EOF {
		return refs, arena, d.errf("block %d has %d trailing bytes", k, b-d.off)
	}
	return refs, arena, nil
}

// pfBuf is one of the prefetcher's two recycled decode buffers.
type pfBuf struct {
	refs  []Ref
	arena []int
}

// BlockPrefetcher streams an IndexedStream's blocks through a
// two-buffer pipeline: a producer goroutine decodes ahead while the
// consumer works on the previous block. Refs returned by Next are
// valid until the next Next or Close — the buffer is recycled after
// that.
type BlockPrefetcher struct {
	ready chan pfResult
	free  chan *pfBuf
	done  chan struct{}
	cur   *pfBuf
	open  bool
}

type pfResult struct {
	buf *pfBuf
	err error
}

// NewBlockPrefetcher starts decoding is's blocks in order. Callers
// must Close it when done (including on early exit) to stop the
// producer goroutine.
func NewBlockPrefetcher(is *IndexedStream) *BlockPrefetcher {
	p := &BlockPrefetcher{
		ready: make(chan pfResult, 2),
		free:  make(chan *pfBuf, 2),
		done:  make(chan struct{}),
		open:  true,
	}
	p.free <- &pfBuf{}
	p.free <- &pfBuf{}
	go func() {
		defer close(p.ready)
		var bs BlockScratch
		for k := 0; k < is.Blocks(); k++ {
			var buf *pfBuf
			select {
			case buf = <-p.free:
			case <-p.done:
				return
			}
			refs, arena, err := is.DecodeBlock(k, &bs, buf.refs[:0], buf.arena[:0])
			buf.refs, buf.arena = refs, arena
			if err != nil {
				select {
				case p.ready <- pfResult{err: err}:
				case <-p.done:
				}
				return
			}
			select {
			case p.ready <- pfResult{buf: buf}:
			case <-p.done:
				return
			}
		}
	}()
	return p
}

// Next returns the refs of the next block, or io.EOF after the last
// one, or the first decode error. The returned slice is recycled on
// the following call.
func (p *BlockPrefetcher) Next() ([]Ref, error) {
	if p.cur != nil {
		p.free <- p.cur // never blocks: only two buffers exist
		p.cur = nil
	}
	res, ok := <-p.ready
	if !ok {
		return nil, io.EOF
	}
	if res.err != nil {
		return nil, res.err
	}
	p.cur = res.buf
	return res.buf.refs, nil
}

// Close stops the producer. Safe to call after EOF; required on early
// exit.
func (p *BlockPrefetcher) Close() {
	if p.open {
		p.open = false
		close(p.done)
	}
}
