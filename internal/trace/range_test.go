package trace

import (
	"bytes"
	"testing"
)

// rangeTestStream builds a stream with enough identifier reuse to
// exercise the remapping: list values recur out of order and repeatedly.
func rangeTestStream(t *testing.T) *Stream {
	t.Helper()
	tr := &Trace{Name: "fixture", Events: []Event{
		{Kind: KindPrim, Op: "car", Args: []string{"(a b)"}, Result: "a"},
		{Kind: KindPrim, Op: "cdr", Args: []string{"(a b)"}, Result: "(b)"},
		{Kind: KindEnter, Op: "f", NArgs: 1},
		{Kind: KindPrim, Op: "cons", Args: []string{"x", "(b)"}, Result: "(x b)", Depth: 1},
		{Kind: KindPrim, Op: "car", Args: []string{"(x b)"}, Result: "x", Depth: 1},
		{Kind: KindExit, Op: "f"},
		{Kind: KindPrim, Op: "cdr", Args: []string{"(x b)"}, Result: "(b)"},
		{Kind: KindPrim, Op: "cons", Args: []string{"(b)", "(a b)"}, Result: "((b) a b)"},
		{Kind: KindPrim, Op: "car", Args: []string{"((b) a b)"}, Result: "(b)"},
	}}
	return Preprocess(tr)
}

func TestSliceStreamBounds(t *testing.T) {
	st := rangeTestStream(t)
	n := len(st.Refs)
	for _, bad := range [][2]int{{-1, 2}, {0, n + 1}, {3, 2}, {n + 1, n + 2}} {
		if _, err := SliceStream(st, bad[0], bad[1]); err == nil {
			t.Errorf("SliceStream(%d,%d) of %d refs: want error, got nil", bad[0], bad[1], n)
		}
	}
	if _, err := SliceStream(st, 0, n); err != nil {
		t.Errorf("full-range slice failed: %v", err)
	}
	if sub, err := SliceStream(st, 2, 2); err != nil || len(sub.Refs) != 0 {
		t.Errorf("empty slice: got %v refs, err %v", sub, err)
	}
}

// TestSliceStreamPreservesStructure checks the contract the replay
// simulator relies on: every field it inspects (Kind, Op, NArgs, Chain,
// Depth) is copied verbatim, and identifier *texts* agree with the
// parent through the renumbering, so distinct parent IDs stay distinct.
func TestSliceStreamPreservesStructure(t *testing.T) {
	st := rangeTestStream(t)
	for _, r := range [][2]int{{0, len(st.Refs)}, {2, 5}, {1, len(st.Refs) - 1}} {
		lo, hi := r[0], r[1]
		sub, err := SliceStream(st, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub.Refs) != hi-lo {
			t.Fatalf("slice [%d,%d): %d refs, want %d", lo, hi, len(sub.Refs), hi-lo)
		}
		for i := range sub.Refs {
			got, want := sub.Refs[i], st.Refs[lo+i]
			if got.Kind != want.Kind || got.Op != want.Op || got.NArgs != want.NArgs ||
				got.Chain != want.Chain || got.Depth != want.Depth {
				t.Fatalf("slice [%d,%d) ref %d: structure changed: %+v vs %+v", lo, hi, i, got, want)
			}
			if sub.Text(got.Result) != st.Text(want.Result) {
				t.Fatalf("slice [%d,%d) ref %d: result text %q, want %q",
					lo, hi, i, sub.Text(got.Result), st.Text(want.Result))
			}
			if len(got.Args) != len(want.Args) {
				t.Fatalf("slice [%d,%d) ref %d: %d args, want %d", lo, hi, i, len(got.Args), len(want.Args))
			}
			for j := range got.Args {
				if sub.Text(got.Args[j]) != st.Text(want.Args[j]) {
					t.Fatalf("slice [%d,%d) ref %d arg %d: text %q, want %q",
						lo, hi, i, j, sub.Text(got.Args[j]), st.Text(want.Args[j]))
				}
			}
		}
		// Renumbering must keep distinct identifiers distinct (injective),
		// or locality over the slice would be distorted.
		seen := make(map[int]string)
		check := func(sliceID int, parentText string) {
			if sliceID == 0 {
				return
			}
			if prev, ok := seen[sliceID]; ok && prev != parentText {
				t.Fatalf("slice [%d,%d): id %d maps to both %q and %q", lo, hi, sliceID, prev, parentText)
			}
			seen[sliceID] = parentText
		}
		for i := range sub.Refs {
			check(sub.Refs[i].Result, st.Text(st.Refs[lo+i].Result))
			for j, a := range sub.Refs[i].Args {
				check(a, st.Text(st.Refs[lo+i].Args[j]))
			}
		}
		if sub.MaxID > st.MaxID {
			t.Errorf("slice [%d,%d): MaxID grew from %d to %d", lo, hi, st.MaxID, sub.MaxID)
		}
	}
}

// TestSliceStreamRoundTrip pins that a slice is a self-contained SMRS
// document: it encodes and decodes without reference to the parent.
func TestSliceStreamRoundTrip(t *testing.T) {
	st := rangeTestStream(t)
	sub, err := SliceStream(st, 1, len(st.Refs)-1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, sub); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Refs) != len(sub.Refs) || back.MaxID != sub.MaxID {
		t.Fatalf("round trip changed shape: %d refs maxid %d, want %d refs maxid %d",
			len(back.Refs), back.MaxID, len(sub.Refs), sub.MaxID)
	}
	for i := range back.Refs {
		if back.Text(back.Refs[i].Result) != sub.Text(sub.Refs[i].Result) {
			t.Fatalf("ref %d result text changed across round trip", i)
		}
	}
}
