// Block-range slicing over preprocessed streams.
//
// The SMTB/SMRS codecs lay events out in fixed-size blocks precisely so
// that contiguous block ranges can be carved out and replayed
// independently (the ingest layer's shard planner cuts only at block
// boundaries). SliceStream materializes such a range as a
// self-contained Stream: identifiers are compacted to first-use order
// so the slice carries only the texts it references and round-trips
// through WriteStream/ReadStream at a size proportional to the range,
// not the whole parent stream.
package trace

import "fmt"

// BlockEvents is the event-block granularity of the SMTB trace and SMRS
// stream codecs: encoders start a fresh column block every BlockEvents
// events, so ref offsets that are multiples of BlockEvents are natural
// shard cut points.
const BlockEvents = blockEvents

// SubStream returns a zero-copy view over refs [lo, hi) of st: the
// refs slice is shared (ids stay absolute) and the id-text table is the
// parent's. Replaying a SubStream is equivalent to replaying the same
// range through SliceStream — the simulator reads only kind, op,
// nargs, chain, and depth, never identifier values — without the
// O(range) remap copy. Use SliceStream when the slice must travel
// (self-contained, densely numbered); use SubStream when it stays
// in-process.
func SubStream(st *Stream, lo, hi int) (*Stream, error) {
	if lo < 0 || hi < lo || hi > len(st.Refs) {
		return nil, fmt.Errorf("trace: slice bounds [%d,%d) out of range 0..%d", lo, hi, len(st.Refs))
	}
	return &Stream{Name: st.Name, MaxID: st.MaxID, IDText: st.IDText, Refs: st.Refs[lo:hi:hi]}, nil
}

// SliceStream returns a new Stream over refs [lo, hi) of st.
// Identifiers are renumbered densely in order of first use within the
// range (identifier 0, "not a list", is preserved), and IDText follows
// the renumbering, so Text agrees with the parent stream for every
// remapped identifier. Since distinct identifiers keep distinct texts,
// locality measurements over the slice agree with measuring the same
// ref range in the parent. The replay simulator never inspects
// identifier values, only their chaining structure, so slicing does not
// perturb simulation results.
//
// The Chain flag of the first ref in the range may reference a
// predecessor outside the range; consumers treat a chain with no
// predecessor as a plain selection (sim falls through when it has no
// previous result), so the flag is preserved as-is.
func SliceStream(st *Stream, lo, hi int) (*Stream, error) {
	if lo < 0 || hi < lo || hi > len(st.Refs) {
		return nil, fmt.Errorf("trace: slice bounds [%d,%d) out of range 0..%d", lo, hi, len(st.Refs))
	}
	out := &Stream{Name: st.Name, IDText: make([]string, 1, min(hi-lo+1, preallocCap))}
	// Hand-built streams carry no MaxID promise; clamp like MeasureNPStream.
	remap := make([]int, min(st.MaxID, maxTableCount)+1)
	mapID := func(id int) int {
		if id <= 0 || id >= len(remap) {
			return 0
		}
		if remap[id] == 0 {
			out.MaxID++
			remap[id] = out.MaxID
			out.IDText = append(out.IDText, st.Text(id))
		}
		return remap[id]
	}
	out.Refs = make([]Ref, 0, min(hi-lo, preallocCap))
	var arena []int // chunked backing storage for remapped Args
	for i := lo; i < hi; i++ {
		r := st.Refs[i]
		if n := len(r.Args); n > 0 {
			if len(arena)+n > cap(arena) {
				arena = make([]int, 0, max(4*blockEvents, n))
			}
			start := len(arena)
			for _, id := range r.Args {
				arena = append(arena, mapID(id))
			}
			r.Args = arena[start:len(arena):len(arena)]
		}
		r.Result = mapID(r.Result)
		out.Refs = append(out.Refs, r)
	}
	return out, nil
}
