package trace

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// encodeStream encodes st with the default (indexed) writer.
func encodeStream(t *testing.T, st *Stream) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteStream(&buf, st); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	return buf.Bytes()
}

// randomStream builds a preprocessed stream from a random trace.
func randomStream(r *rand.Rand, n int) *Stream {
	return Preprocess(randomTrace(r, n))
}

// TestIndexFooterRoundTrip: both writers append an SMTX footer by
// default, ParseIndex recovers it, and the recovered fields describe
// the encoding exactly — re-serializing the parsed index reproduces
// the footer bytes, and the per-block offsets tile the event section.
func TestIndexFooterRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	check := func(name string, enc []byte, total, maxID int) {
		ix, err := ParseIndex(enc)
		if err != nil {
			t.Fatalf("%s: ParseIndex: %v", name, err)
		}
		if ix == nil {
			t.Fatalf("%s: no footer on a default encoding", name)
		}
		if ix.Total != total {
			t.Fatalf("%s: index covers %d events, want %d", name, ix.Total, total)
		}
		if maxID >= 0 && ix.MaxID != maxID {
			t.Fatalf("%s: index max id %d, want %d", name, ix.MaxID, maxID)
		}
		if got, want := ix.Blocks(), blockCountOf(total); got != want {
			t.Fatalf("%s: %d blocks, want %d", name, got, want)
		}
		sum := 0
		for k := 0; k < ix.Blocks(); k++ {
			if ix.Offs[k] >= ix.Offs[k+1] {
				t.Fatalf("%s: block %d offsets not increasing: %d..%d", name, k, ix.Offs[k], ix.Offs[k+1])
			}
			if got, want := ix.Counts[k], expectBlockCount(total, k); got != want {
				t.Fatalf("%s: block %d count %d, want %d", name, k, got, want)
			}
			sum += ix.Counts[k]
			if k > 0 && ix.Marks[k] < ix.Marks[k-1] {
				t.Fatalf("%s: watermarks decrease at block %d: %d < %d", name, k, ix.Marks[k], ix.Marks[k-1])
			}
			if ix.Marks[k] > ix.MaxID {
				t.Fatalf("%s: block %d watermark %d > max id %d", name, k, ix.Marks[k], ix.MaxID)
			}
		}
		if sum != total {
			t.Fatalf("%s: block counts sum to %d, want %d", name, sum, total)
		}
		// The footer is a pure function of the parsed index: rebuilding
		// it from the Index must reproduce the trailing bytes.
		footer := appendIndexFooterBytes(nil, ix)
		if !bytes.Equal(enc[len(enc)-len(footer):], footer) {
			t.Fatalf("%s: re-serialized footer differs from encoded footer", name)
		}
	}
	for i := 0; i < 8; i++ {
		tr := randomTrace(r, 10+r.Intn(3000))
		// SMTB: MaxID is the string-table size, internal to the encoder —
		// pass -1 to skip the exact-value check and rely on the
		// watermark bound.
		check("smtb", encodeBinary(t, tr), len(tr.Events), -1)
		st := Preprocess(tr)
		check("smrs", encodeStream(t, st), len(st.Refs), st.MaxID)
	}
}

// TestNoIndexBackCompat: pre-index encodings (no SMTX footer) still
// decode to the same trace, ParseIndex reports their absence without
// error, and OpenIndexedStream refuses them so callers fall back to
// the sequential decoder.
func TestNoIndexBackCompat(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	tr := randomTrace(r, 500)
	st := Preprocess(tr)

	var plain bytes.Buffer
	if err := WriteStreamNoIndex(&plain, st); err != nil {
		t.Fatal(err)
	}
	if ix, err := ParseIndex(plain.Bytes()); err != nil || ix != nil {
		t.Fatalf("ParseIndex on unindexed stream = (%v, %v), want (nil, nil)", ix, err)
	}
	back, err := ReadStream(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatalf("unindexed stream does not decode: %v", err)
	}
	if !reflect.DeepEqual(normalizeStream(back), normalizeStream(st)) {
		t.Fatal("unindexed stream decodes to a different stream")
	}
	if _, err := OpenIndexedStream(plain.Bytes()); err == nil {
		t.Fatal("OpenIndexedStream accepted an unindexed stream")
	}

	var pb bytes.Buffer
	if err := WriteBinaryNoIndex(&pb, tr); err != nil {
		t.Fatal(err)
	}
	if ix, err := ParseIndex(pb.Bytes()); err != nil || ix != nil {
		t.Fatalf("ParseIndex on unindexed binary = (%v, %v), want (nil, nil)", ix, err)
	}
	if _, err := ReadBinary(bytes.NewReader(pb.Bytes())); err != nil {
		t.Fatalf("unindexed binary does not decode: %v", err)
	}

	// Indexed and unindexed encodings decode identically; the indexed
	// one is the unindexed bytes plus the footer.
	idx := encodeStream(t, st)
	if !bytes.HasPrefix(idx, plain.Bytes()) {
		t.Fatal("indexed encoding is not unindexed bytes + footer")
	}
	// Trailing garbage is still rejected either way.
	for _, enc := range [][]byte{plain.Bytes(), idx} {
		bad := append(append([]byte{}, enc...), 0x01)
		if _, err := ReadStream(bytes.NewReader(bad)); err == nil {
			t.Fatal("trailing garbage accepted")
		} else if !strings.Contains(err.Error(), "trailing data") && !strings.Contains(err.Error(), "footer") {
			t.Errorf("trailing-garbage error %v names neither trailing data nor the footer", err)
		}
	}
}

// TestIndexedStreamMatchesReadStream: random-access decoding
// (DecodeBlock, and the double-buffered BlockPrefetcher on top) yields
// exactly the refs the sequential decoder does.
func TestIndexedStreamMatchesReadStream(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for i := 0; i < 6; i++ {
		st := randomStream(r, 10+r.Intn(3000))
		enc := encodeStream(t, st)
		want, err := ReadStream(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		is, err := OpenIndexedStream(enc)
		if err != nil {
			t.Fatal(err)
		}
		var bs BlockScratch
		var got []Ref
		for k := 0; k < is.Blocks(); k++ {
			refs, _, err := is.DecodeBlock(k, &bs, nil, nil)
			if err != nil {
				t.Fatalf("block %d: %v", k, err)
			}
			got = append(got, refs...)
		}
		if !reflect.DeepEqual(normalizeRefs(got), normalizeRefs(want.Refs)) {
			t.Fatal("DecodeBlock refs differ from ReadStream refs")
		}

		pf := NewBlockPrefetcher(is)
		got = got[:0]
		for {
			refs, err := pf.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			// Next's refs (and their arena-backed Args) are recycled on
			// the following Next — deep-copy before accumulating.
			for _, ref := range refs {
				ref.Args = append([]int(nil), ref.Args...)
				got = append(got, ref)
			}
		}
		pf.Close()
		if !reflect.DeepEqual(normalizeRefs(got), normalizeRefs(want.Refs)) {
			t.Fatal("BlockPrefetcher refs differ from ReadStream refs")
		}
	}
}

func normalizeRefs(refs []Ref) []Ref {
	out := make([]Ref, len(refs))
	for i, r := range refs {
		if len(r.Args) == 0 {
			r.Args = nil
		}
		out[i] = r
	}
	return out
}

// TestSlicePayloadProperty is the zero-copy contract: a byte-range
// sub-slice built by AppendSlicePayload decodes to exactly the
// parent's refs for those blocks — same absolute identifiers, no
// renumbering — with the id-text table truncated at the slice's
// watermark. The sliced payload must itself carry a valid index, so
// slices of slices keep working.
func TestSlicePayloadProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		st := randomStream(rr, 10+rr.Intn(4000))
		enc := encodeStream(t, st)
		ix, err := ParseIndex(enc)
		if err != nil || ix == nil {
			t.Logf("seed %d: no index: %v", seed, err)
			return false
		}
		nb := ix.Blocks()
		// All ranges when small, a random sample otherwise.
		var ranges [][2]int
		for b0 := 0; b0 < nb; b0++ {
			for b1 := b0 + 1; b1 <= nb; b1++ {
				ranges = append(ranges, [2]int{b0, b1})
			}
		}
		if len(ranges) > 12 {
			rr.Shuffle(len(ranges), func(i, j int) { ranges[i], ranges[j] = ranges[j], ranges[i] })
			ranges = append(ranges[:10], [2]int{0, nb}) // always include the identity slice
		}
		for _, br := range ranges {
			b0, b1 := br[0], br[1]
			payload, err := AppendSlicePayload(nil, enc, ix, b0, b1)
			if err != nil {
				t.Logf("seed %d: slice [%d,%d): %v", seed, b0, b1, err)
				return false
			}
			sub, err := ReadStream(bytes.NewReader(payload))
			if err != nil {
				t.Logf("seed %d: slice [%d,%d) does not decode: %v", seed, b0, b1, err)
				return false
			}
			lo, hi := b0*blockEvents, min(b1*blockEvents, len(st.Refs))
			if !reflect.DeepEqual(normalizeRefs(sub.Refs), normalizeRefs(st.Refs[lo:hi])) {
				t.Logf("seed %d: slice [%d,%d) refs differ from parent range [%d,%d)", seed, b0, b1, lo, hi)
				return false
			}
			if w := ix.Marks[b1-1]; sub.MaxID != w {
				t.Logf("seed %d: slice max id %d, want watermark %d", seed, sub.MaxID, w)
				return false
			}
			for id := 0; id <= sub.MaxID; id++ {
				if sub.Text(id) != st.Text(id) {
					t.Logf("seed %d: id %d text %q, parent %q", seed, id, sub.Text(id), st.Text(id))
					return false
				}
			}
			// The slice is itself indexed and seekable.
			if _, err := OpenIndexedStream(payload); err != nil {
				t.Logf("seed %d: slice [%d,%d) not seekable: %v", seed, b0, b1, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSlicePayloadBounds: out-of-range block ranges are errors, not
// empty payloads.
func TestSlicePayloadBounds(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	st := randomStream(r, 2500)
	enc := encodeStream(t, st)
	ix, err := ParseIndex(enc)
	if err != nil || ix == nil {
		t.Fatalf("ParseIndex: %v", err)
	}
	nb := ix.Blocks()
	for _, br := range [][2]int{{-1, 1}, {0, 0}, {1, 1}, {0, nb + 1}, {2, 1}} {
		if _, err := AppendSlicePayload(nil, enc, ix, br[0], br[1]); err == nil {
			t.Errorf("slice [%d,%d) accepted", br[0], br[1])
		}
	}
}

// hostileEncoding re-emits a valid indexed stream with a doctored
// footer: the container bytes stay intact, only the index lies.
func hostileEncoding(t *testing.T, enc []byte, mutate func(*Index)) []byte {
	t.Helper()
	ix, err := ParseIndex(enc)
	if err != nil || ix == nil {
		t.Fatalf("ParseIndex: %v", err)
	}
	base := enc[:ix.Offs[ix.Blocks()]] // everything before the footer
	cp := &Index{
		Total:   ix.Total,
		MaxID:   ix.MaxID,
		CopyEnd: ix.CopyEnd,
		IDStart: ix.IDStart,
		Offs:    append([]int64{}, ix.Offs...),
		Counts:  append([]int{}, ix.Counts...),
		Marks:   append([]int{}, ix.Marks...),
		IDEnds:  append([]int64{}, ix.IDEnds...),
	}
	mutate(cp)
	return appendIndexFooterBytes(append([]byte{}, base...), cp)
}

// TestHostileIndex: a footer that misdescribes the container —
// overlapping, out-of-range, or misordered offsets, lying counts or
// watermarks, wrong table boundaries — must be rejected by the
// sequential decoder's claim-by-claim verification, never silently
// trusted. Structural lies are additionally caught by ParseIndex or
// the indexed decoder itself.
func TestHostileIndex(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	st := randomStream(r, 2500) // ≥2 blocks
	enc := encodeStream(t, st)
	good, err := ParseIndex(enc)
	if err != nil || good == nil || good.Blocks() < 2 {
		t.Fatalf("need a valid multi-block index, got %v (%v)", good, err)
	}

	cases := []struct {
		name   string
		mutate func(*Index)
	}{
		{"total too low", func(ix *Index) { ix.Total-- }},
		{"total too high", func(ix *Index) { ix.Total++ }},
		{"count shifted between blocks", func(ix *Index) { ix.Counts[0]--; ix.Counts[1]++ }},
		{"block length shifted", func(ix *Index) {
			// Block 0 claims one byte of block 1: overlapping ranges.
			ix.Offs[1]++
		}},
		{"block length short", func(ix *Index) {
			for k := 1; k < len(ix.Offs); k++ {
				ix.Offs[k]-- // every block one byte short, footer offset drifts
			}
		}},
		{"misordered offsets", func(ix *Index) { ix.Offs[0], ix.Offs[1] = ix.Offs[1], ix.Offs[0] }},
		{"watermark below actual", func(ix *Index) {
			last := len(ix.Marks) - 1
			ix.Marks[last] = 0
			ix.IDEnds[last] = ix.IDStart
		}},
		{"watermark above max id", func(ix *Index) {
			last := len(ix.Marks) - 1
			ix.Marks[last] = ix.MaxID + 1
		}},
		{"id table boundary wrong", func(ix *Index) { ix.IDEnds[len(ix.IDEnds)-1]-- }},
		{"copyend wrong", func(ix *Index) { ix.CopyEnd-- }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bad := hostileEncoding(t, enc, c.mutate)
			serr := func() error {
				_, err := ReadStream(bytes.NewReader(bad))
				return err
			}()
			ierr := func() error {
				is, err := OpenIndexedStream(bad)
				if err != nil {
					return err
				}
				var bs BlockScratch
				for k := 0; k < is.Blocks(); k++ {
					if _, _, err := is.DecodeBlock(k, &bs, nil, nil); err != nil {
						return err
					}
				}
				return nil
			}()
			if serr == nil {
				t.Error("sequential decoder accepted a lying index")
			}
			if ierr == nil {
				t.Error("indexed decoder accepted a lying index")
			}
			if serr != nil && !strings.Contains(serr.Error(), "offset ") {
				t.Errorf("sequential error %v does not carry an offset", serr)
			}
		})
	}
}

// TestMangledFooterBytes: raw byte-level damage to the footer region —
// truncation, version bumps, length-field lies, magic corruption —
// either reads as "no footer" (and then the container fails trailer
// verification) or is an explicit index error; never a clean decode of
// wrong data.
func TestMangledFooterBytes(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	st := randomStream(r, 1500)
	enc := encodeStream(t, st)

	mangle := func(name string, f func([]byte) []byte) {
		bad := f(append([]byte{}, enc...))
		if _, err := ReadStream(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	mangle("truncated footer", func(b []byte) []byte { return b[:len(b)-3] })
	mangle("trailing magic corrupted", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mangle("footer length lies", func(b []byte) []byte { b[len(b)-5]++; return b })
	mangle("garbage after footer", func(b []byte) []byte { return append(b, "SMTX"...) })
	mangle("version bumped", func(b []byte) []byte {
		// The version byte sits right after the leading SMTX magic;
		// find the footer start via its parsed length field.
		ix, err := ParseIndex(b)
		if err != nil || ix == nil {
			t.Fatalf("ParseIndex: %v", err)
		}
		b[ix.Offs[ix.Blocks()]+4]++
		return b
	})
}

// TestIndexHeaderFooterCrossCheck: OpenIndexedStream refuses a footer
// whose header-level claims (ref count, max id, section offsets)
// disagree with the decoded header, even when the footer is
// self-consistent.
func TestIndexHeaderFooterCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	st := randomStream(r, 1500)
	enc := encodeStream(t, st)
	for _, c := range []struct {
		name   string
		mutate func(*Index)
	}{
		{"max id", func(ix *Index) { ix.MaxID++ }},
		{"id start", func(ix *Index) {
			ix.CopyEnd-- // shifts the derived id-text start away from the header's
		}},
	} {
		bad := hostileEncoding(t, enc, c.mutate)
		if _, err := OpenIndexedStream(bad); err == nil {
			t.Errorf("%s mismatch accepted", c.name)
		}
	}
}

// TestStreamScannerIndex: the incremental scanner's snapshot agrees
// with the committed footer once the stream is fully scanned, and its
// recorded raw bytes slice with AppendSlicePayload exactly like the
// full encoding does.
func TestStreamScannerIndex(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	st := randomStream(r, 3000)
	enc := encodeStream(t, st)
	want, err := ParseIndex(enc)
	if err != nil || want == nil {
		t.Fatalf("ParseIndex: %v", err)
	}

	sc, err := NewStreamScanner(bytes.NewReader(enc), true)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := sc.Scan(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		// Mid-scan snapshots must be sliceable: every complete block
		// scanned so far yields a payload identical to slicing the
		// final encoding.
		ix := sc.IndexSnapshot()
		if b := ix.Blocks(); b > 0 {
			got, err := AppendSlicePayload(nil, sc.Raw(), &ix, 0, b)
			if err != nil {
				t.Fatalf("mid-scan slice at block %d: %v", b, err)
			}
			ref, err := AppendSlicePayload(nil, enc, want, 0, b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatalf("mid-scan slice at block %d differs from final-encoding slice", b)
			}
		}
	}
	ix := sc.IndexSnapshot()
	if ix.Total != want.Total || ix.MaxID != want.MaxID || ix.CopyEnd != want.CopyEnd || ix.IDStart != want.IDStart ||
		!reflect.DeepEqual(ix.Offs, want.Offs) || !reflect.DeepEqual(ix.Counts, want.Counts) ||
		!reflect.DeepEqual(ix.Marks, want.Marks) || !reflect.DeepEqual(ix.IDEnds, want.IDEnds) {
		t.Fatalf("scanner snapshot disagrees with committed footer:\n got %+v\nwant %+v", ix, want)
	}
}

// TestSliceOfSlice: slicing a sliced payload again still decodes to
// the right parent range — the delta-encoded footer is frame-invariant.
func TestSliceOfSlice(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	st := randomStream(r, 4000)
	enc := encodeStream(t, st)
	ix, err := ParseIndex(enc)
	if err != nil || ix == nil || ix.Blocks() < 3 {
		t.Fatalf("need ≥3 blocks, got %v (%v)", ix, err)
	}
	outer, err := AppendSlicePayload(nil, enc, ix, 1, ix.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	oix, err := ParseIndex(outer)
	if err != nil || oix == nil {
		t.Fatalf("outer slice has no index: %v", err)
	}
	inner, err := AppendSlicePayload(nil, outer, oix, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ReadStream(bytes.NewReader(inner))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 2*blockEvents, min(3*blockEvents, len(st.Refs))
	if !reflect.DeepEqual(normalizeRefs(sub.Refs), normalizeRefs(st.Refs[lo:hi])) {
		t.Fatal("slice of slice differs from parent range")
	}
}

func TestIndexErrorsNameOffsets(t *testing.T) {
	// Decode-limit discipline: index errors must carry byte offsets so
	// hostile uploads are attributable (same contract smallvet enforces
	// for the rest of the decoders).
	r := rand.New(rand.NewSource(83))
	st := randomStream(r, 1500)
	enc := encodeStream(t, st)
	bad := hostileEncoding(t, enc, func(ix *Index) { ix.Counts[0]--; ix.Counts[len(ix.Counts)-1]++ })
	_, err := ReadStream(bytes.NewReader(bad))
	if err == nil {
		t.Fatal("lying counts accepted")
	}
	if !strings.Contains(err.Error(), "offset ") {
		t.Errorf("error %v carries no offset", err)
	}
	if !strings.Contains(err.Error(), "index") {
		t.Errorf("error %v does not name the index", err)
	}
	t.Log(fmt.Sprintf("index error shape: %v", err))
}
