// Package trace models the s-expression-level list access traces of
// §3.3.1 and §5.2.1. A trace records, in program order, every list
// primitive call (name and arguments in s-expression form) and every
// user-defined function entry/exit (name and argument count). This is
// exactly the information the thesis's modified Franz Lisp interpreter
// wrote to its trace files.
//
// Traces are produced by internal/lisp's trace hook, characterised here
// (Fig 3.1, Tables 3.1/5.1), preprocessed into (unique identifier,
// chaining flag) reference streams (§5.2.1), and consumed by
// internal/locality and internal/sim.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sexpr"
)

// Kind discriminates trace events.
type Kind uint8

const (
	// KindPrim is a list primitive call (car, cdr, cons, ...).
	KindPrim Kind = iota
	// KindEnter is entry to a user-defined function.
	KindEnter
	// KindExit is return from a user-defined function.
	KindExit
)

// Event is one trace record.
type Event struct {
	Kind   Kind
	Op     string   // primitive name, or function name for Enter/Exit
	Args   []string // s-expression text of each argument (KindPrim only)
	Result string   // s-expression text of the primitive's result
	NArgs  int      // argument count (KindEnter only)
	Depth  int      // user-function call depth at the time of the event
}

// Trace is an ordered list of events.
type Trace struct {
	Name   string
	Events []Event
}

// Prims returns the number of primitive events.
func (t *Trace) Prims() int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Kind == KindPrim {
			n++
		}
	}
	return n
}

// Stats summarises a trace in the terms of Table 5.1 and Fig 3.1.
type Stats struct {
	Functions  int            // user-defined function calls
	Primitives int            // traced primitive calls
	MaxDepth   int            // maximum user call depth
	PerOp      map[string]int // primitive call counts by name
}

// Pct returns the percentage of primitive calls with the given op name.
func (s Stats) Pct(op string) float64 {
	if s.Primitives == 0 {
		return 0
	}
	return 100 * float64(s.PerOp[op]) / float64(s.Primitives)
}

// Summarize computes Stats for t.
func Summarize(t *Trace) Stats {
	s := Stats{PerOp: make(map[string]int)}
	for i := range t.Events {
		ev := &t.Events[i]
		switch ev.Kind {
		case KindPrim:
			s.Primitives++
			s.PerOp[ev.Op]++
		case KindEnter:
			s.Functions++
			if ev.Depth > s.MaxDepth {
				s.MaxDepth = ev.Depth
			}
		}
	}
	return s
}

// NPStats aggregates the list complexity metrics of Table 3.1: the average
// n and p over every distinct list argument in the trace, plus the raw
// distributions for Figs 3.3a/3.3b.
type NPStats struct {
	Lists int
	AvgN  float64
	AvgP  float64
	NDist map[int]int
	PDist map[int]int
}

// MeasureNP parses every distinct list-valued primitive argument in the
// trace and accumulates its (n, p) metrics. Distinctness is textual, as in
// the thesis: identical-looking lists are measured once.
func MeasureNP(t *Trace) NPStats {
	st := NPStats{NDist: make(map[int]int), PDist: make(map[int]int)}
	seen := make(map[string]bool)
	var sumN, sumP int
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind != KindPrim {
			continue
		}
		for _, a := range ev.Args {
			if seen[a] {
				continue
			}
			seen[a] = true
			m, ok := measureText(a)
			if !ok {
				continue
			}
			st.Lists++
			sumN += m.N
			sumP += m.P
			st.NDist[m.N]++
			st.PDist[m.P]++
		}
	}
	if st.Lists > 0 {
		st.AvgN = float64(sumN) / float64(st.Lists)
		st.AvgP = float64(sumP) / float64(st.Lists)
	}
	return st
}

// measureText parses one s-expression text and returns its n/p metrics;
// ok is false for non-list or unparseable text.
func measureText(s string) (sexpr.Metrics, bool) {
	if !isListText(s) {
		return sexpr.Metrics{}, false
	}
	v, err := sexpr.Parse(s)
	if err != nil {
		return sexpr.Metrics{}, false
	}
	return sexpr.Measure(v), true
}

// Write encodes t in the line-oriented trace file format. Each event is
// one line; fields are separated by tabs (s-expressions never contain
// tabs when printed by sexpr).
//
//	P <depth> <op> <result> <arg>...
//	E <depth> <name> <nargs>
//	X <depth> <name>
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\n", t.Name); err != nil {
		return err
	}
	for i := range t.Events {
		ev := &t.Events[i]
		var err error
		switch ev.Kind {
		case KindPrim:
			// Zero-arg events omit the argument columns entirely, so
			// Write∘Read is idempotent (a trailing tab would read back
			// as a single empty argument).
			if len(ev.Args) == 0 {
				_, err = fmt.Fprintf(bw, "P\t%d\t%s\t%s\n", ev.Depth, ev.Op, ev.Result)
			} else {
				_, err = fmt.Fprintf(bw, "P\t%d\t%s\t%s\t%s\n",
					ev.Depth, ev.Op, ev.Result, strings.Join(ev.Args, "\t"))
			}
		case KindEnter:
			_, err = fmt.Fprintf(bw, "E\t%d\t%s\t%d\n", ev.Depth, ev.Op, ev.NArgs)
		case KindExit:
			_, err = fmt.Fprintf(bw, "X\t%d\t%s\n", ev.Depth, ev.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a trace written by Write. The decoder is strict: smalld
// accepts user-supplied traces, so every malformed record is rejected
// with a descriptive error naming the line and the offending field
// rather than being skipped or allowed to corrupt downstream
// preprocessing. Accepted traces round-trip losslessly through Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	t := &Trace{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# trace "); ok {
				t.Name = rest
			}
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want at least 3 (kind, depth, name)", lineno, len(fields))
		}
		depth, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad depth field %q: %v", lineno, fields[1], err)
		}
		if depth < 0 {
			return nil, fmt.Errorf("trace: line %d: negative depth %d", lineno, depth)
		}
		if fields[2] == "" {
			return nil, fmt.Errorf("trace: line %d: empty op/name field", lineno)
		}
		switch fields[0] {
		case "P":
			if len(fields) < 4 {
				return nil, fmt.Errorf("trace: line %d: P record has %d fields, want at least 4 (P, depth, op, result)", lineno, len(fields))
			}
			t.Events = append(t.Events, Event{
				Kind: KindPrim, Depth: depth, Op: fields[2],
				Result: fields[3], Args: fields[4:],
			})
		case "E":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: E record has %d fields, want 4 (E, depth, name, nargs)", lineno, len(fields))
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad nargs field %q: %v", lineno, fields[3], err)
			}
			if n < 0 {
				return nil, fmt.Errorf("trace: line %d: negative nargs %d", lineno, n)
			}
			t.Events = append(t.Events, Event{Kind: KindEnter, Depth: depth, Op: fields[2], NArgs: n})
		case "X":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: X record has %d fields, want 3 (X, depth, name)", lineno, len(fields))
			}
			t.Events = append(t.Events, Event{Kind: KindExit, Depth: depth, Op: fields[2]})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record kind %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", lineno+1, err)
	}
	return t, nil
}
