package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/parsweep"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MaxShardPayload bounds one shard's encoded sub-stream — matched to
// the SMCR wire body limit so every shard fits an RPC frame.
const MaxShardPayload = 16 << 20

// ShardRequest is one unit of replay work handed to a ShardRunner.
//
// A request carries the shard in up to two forms. Stream, when set, is
// a zero-copy view into the staged segment (absolute identifiers, the
// parent's id-text table) — an in-process runner replays it directly,
// skipping the encode/decode round-trip entirely. ShardPayload
// materializes the wire form on demand: for indexed segments it is a
// byte-range sub-slice of the original encoding with a patched header
// (no decode, no re-encode), else a SliceStream re-encode. Runners
// that ship shards over the network call ShardPayload; in-process
// runners prefer Stream.
type ShardRequest struct {
	Index   int             // shard position in plan order
	Count   int             // total shards in the job
	Params  json.RawMessage // opaque simulation parameters (the runner decodes them)
	Payload []byte          // the shard's sub-stream, SMRS-encoded (nil until materialized)
	Stream  *trace.Stream   // in-process zero-copy view of the shard (nil on the wire)

	encode func() ([]byte, error) // lazy payload builder set by Replay
}

// ShardPayload returns the shard's SMRS-encoded sub-stream, building
// and caching it on first use and enforcing MaxShardPayload.
func (req *ShardRequest) ShardPayload() ([]byte, error) {
	if req.Payload == nil {
		if req.encode == nil {
			return nil, fmt.Errorf("ingest: shard %d has no payload", req.Index)
		}
		p, err := req.encode()
		if err != nil {
			return nil, fmt.Errorf("ingest: encoding shard %d: %w", req.Index, err)
		}
		req.Payload = p
	}
	if len(req.Payload) > MaxShardPayload {
		return nil, fmt.Errorf("ingest: shard %d payload %d bytes exceeds cap %d", req.Index, len(req.Payload), MaxShardPayload)
	}
	return req.Payload, nil
}

// ShardRunner replays one shard on a fresh machine and returns its
// mergeable statistics. Implementations: smalld's in-process runner
// (standalone role) and the cluster gateway's RPC-spreading runner.
// Runners must be deterministic functions of the request — Replay's
// guarantee that distributed and local runs agree byte-for-byte rests
// on it.
type ShardRunner interface {
	RunShard(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error)
}

// RunnerFunc adapts a function to the ShardRunner interface.
type RunnerFunc func(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error)

// RunShard implements ShardRunner.
func (f RunnerFunc) RunShard(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error) {
	return f(ctx, req)
}

// shardEncoder builds the lazy payload closure for one shard of seg:
// indexed segments slice the original encoding by byte range (header
// patched from index metadata); unindexed ones fall back to the
// SliceStream re-encode.
func shardEncoder(seg Segment, sh Shard) func() ([]byte, error) {
	return func() ([]byte, error) {
		enc, ix, err := seg.Encoded()
		if err == nil && ix != nil {
			b0 := sh.Lo / trace.BlockEvents
			b1 := (sh.Hi + trace.BlockEvents - 1) / trace.BlockEvents
			return trace.AppendSlicePayload(nil, enc, ix, b0, b1)
		}
		// No usable index (hand-built stream too large to index, or the
		// encode itself failed): re-encode the range the slow way.
		sub, err := trace.SliceStream(seg.Stream, sh.Lo, sh.Hi)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := trace.WriteStream(&buf, sub); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// Replay executes a shard plan map-reduce style: each shard becomes a
// ShardRequest — a zero-copy in-process view plus a lazily sliced wire
// payload — fanned out to the runner via the parallel sweep engine,
// and the per-shard statistics fold with sim.ShardStats.Merge in plan
// order. Every shard replays on a fresh machine with the same
// parameters, so the merged result is a pure function of (segments,
// plan, params) — independent of worker placement, scheduling, and
// parallelism — and sharded runs are byte-identical to local runs of
// the same plan.
func Replay(ctx context.Context, runner ShardRunner, segs []Segment, plan []Shard, params json.RawMessage) (*sim.ShardStats, error) {
	if err := ValidatePlanCounts(segmentCounts(segs), plan); err != nil {
		return nil, err
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("ingest: empty shard plan")
	}
	parts, err := parsweep.MapCtx(ctx, len(plan), func(i int) (*sim.ShardStats, error) {
		seg := segs[plan[i].Segment]
		view, err := trace.SubStream(seg.Stream, plan[i].Lo, plan[i].Hi)
		if err != nil {
			return nil, err
		}
		req := &ShardRequest{
			Index: i, Count: len(plan), Params: params,
			Stream: view,
			encode: shardEncoder(seg, plan[i]),
		}
		st, err := runner.RunShard(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %d: %w", i, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	var total sim.ShardStats
	for _, p := range parts {
		total.Merge(p)
	}
	return &total, nil
}

// ReplayStreams adapts Replay to bare streams (no staged segments) —
// the benchmark and test entry point.
func ReplayStreams(ctx context.Context, runner ShardRunner, streams []*trace.Stream, plan []Shard, params json.RawMessage) (*sim.ShardStats, error) {
	segs := make([]Segment, len(streams))
	for i, st := range streams {
		segs[i] = NewSegment(st)
	}
	return Replay(ctx, runner, segs, plan, params)
}
