package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/parsweep"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MaxShardPayload bounds one shard's encoded sub-stream — matched to
// the SMCR wire body limit so every shard fits an RPC frame.
const MaxShardPayload = 16 << 20

// ShardRequest is one unit of replay work handed to a ShardRunner.
type ShardRequest struct {
	Index   int             // shard position in plan order
	Count   int             // total shards in the job
	Params  json.RawMessage // opaque simulation parameters (the runner decodes them)
	Payload []byte          // the shard's sub-stream, SMRS-encoded
}

// ShardRunner replays one shard on a fresh machine and returns its
// mergeable statistics. Implementations: smalld's in-process runner
// (standalone role) and the cluster gateway's RPC-spreading runner.
// Runners must be deterministic functions of the request — Replay's
// guarantee that distributed and local runs agree byte-for-byte rests
// on it.
type ShardRunner interface {
	RunShard(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error)
}

// RunnerFunc adapts a function to the ShardRunner interface.
type RunnerFunc func(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error)

// RunShard implements ShardRunner.
func (f RunnerFunc) RunShard(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error) {
	return f(ctx, req)
}

// Replay executes a shard plan map-reduce style: each shard's ref range
// is sliced out of its segment, encoded as a self-contained SMRS
// stream, fanned out to the runner via the parallel sweep engine, and
// the per-shard statistics fold with sim.ShardStats.Merge in plan
// order. Every shard replays on a fresh machine with the same
// parameters, so the merged result is a pure function of (segments,
// plan, params) — independent of worker placement, scheduling, and
// parallelism — and sharded runs are byte-identical to local runs of
// the same plan.
func Replay(ctx context.Context, runner ShardRunner, segs []*trace.Stream, plan []Shard, params json.RawMessage) (*sim.ShardStats, error) {
	if err := ValidatePlan(segs, plan); err != nil {
		return nil, err
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("ingest: empty shard plan")
	}
	parts, err := parsweep.MapCtx(ctx, len(plan), func(i int) (*sim.ShardStats, error) {
		sub, err := trace.SliceStream(segs[plan[i].Segment], plan[i].Lo, plan[i].Hi)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := trace.WriteStream(&buf, sub); err != nil {
			return nil, fmt.Errorf("ingest: encoding shard %d: %w", i, err)
		}
		if buf.Len() > MaxShardPayload {
			return nil, fmt.Errorf("ingest: shard %d payload %d bytes exceeds cap %d", i, buf.Len(), MaxShardPayload)
		}
		st, err := runner.RunShard(ctx, &ShardRequest{Index: i, Count: len(plan), Params: params, Payload: buf.Bytes()})
		if err != nil {
			return nil, fmt.Errorf("ingest: shard %d: %w", i, err)
		}
		return st, nil
	})
	if err != nil {
		return nil, err
	}
	var total sim.ShardStats
	for _, p := range parts {
		total.Merge(p)
	}
	return &total, nil
}
