// Streaming ingest: replay an SMRS upload while it is still arriving.
//
// StreamRun scans the upload block by block (trace.StreamScanner with
// raw-byte retention) and cuts a shard every shardBlocks blocks. Each
// shard is dispatched the moment its byte range has been staged — an
// in-process zero-copy view over the refs decoded so far, plus a lazy
// wire payload sliced straight out of the recorded upload bytes — so
// time-to-first-shard is one shard's worth of upload, not the whole
// stream's. Shard statistics merge in cut order, which makes the
// merged result identical to a staged run of the same plan.
package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// StreamRunResult is the outcome of one streaming ingest run, with the
// latency split the smoke test and ingestbench assert on: FirstShardNs
// strictly precedes StagedNs whenever the stream spans more than one
// shard, because dispatch does not wait for staging to finish.
type StreamRunResult struct {
	Stats        *sim.ShardStats
	Refs         int   // refs replayed
	Bytes        int64 // encoded bytes consumed
	Shards       int   // shards dispatched
	FirstShardNs int64 // start → first shard dispatched
	StagedNs     int64 // start → whole stream scanned
	TotalNs      int64 // start → merged result ready
}

// boundedReader caps the bytes a streaming upload may push: limit plus
// one probe byte (so an exactly-limit stream can confirm EOF), then
// reads fail and over marks the rejection.
type boundedReader struct {
	r         io.Reader
	remaining int64
	over      bool
}

func (b *boundedReader) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		b.over = true
		return 0, fmt.Errorf("stream exceeds size limit")
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.r.Read(p)
	b.remaining -= int64(n)
	return n, err
}

// StreamRun replays an SMRS upload as a sharded job without waiting
// for the upload to finish: a shard covering shardBlocks event blocks
// is dispatched to runner as soon as its bytes have arrived. limit
// bounds the upload size (0 = unlimited); malformed, empty, over-limit,
// or over-sharded streams return BadSegmentError. The merged result is
// byte-identical to staging the same stream and replaying it under a
// plan with the same cuts.
func StreamRun(ctx context.Context, runner ShardRunner, r io.Reader, limit int64, shardBlocks int, params json.RawMessage) (*StreamRunResult, error) {
	shardBlocks = max(1, shardBlocks)
	start := time.Now()
	var bounded *boundedReader
	if limit > 0 {
		bounded = &boundedReader{r: r, remaining: limit + 1}
		r = bounded
	}
	overLimit := func() bool { return bounded != nil && bounded.over }

	sc, err := trace.NewStreamScanner(r, true)
	if err != nil {
		if overLimit() {
			return nil, &BadSegmentError{Err: fmt.Errorf("stream exceeds %d bytes", limit)}
		}
		return nil, &BadSegmentError{Err: err}
	}

	ctx, cancel := context.WithCancel(ctx)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		stats    []*sim.ShardStats // one slot per shard, filled by workers
	)
	defer func() {
		cancel()
		wg.Wait()
	}()
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	sem := make(chan struct{}, min(max(1, runtime.GOMAXPROCS(0)), MaxShards))
	res := &StreamRunResult{}
	b0, lo := 0, 0 // first block / ref of the shard being accumulated

	// dispatch launches the shard covering blocks [b0,b1) = refs [lo,hi).
	dispatch := func(b1, hi int) error {
		idx := res.Shards
		if idx >= MaxShards {
			return &BadSegmentError{Err: fmt.Errorf("stream needs more than %d shards; raise shard_blocks", MaxShards)}
		}
		view, err := trace.SubStream(sc.Stream(), lo, hi)
		if err != nil {
			return err
		}
		// The snapshot's entries and the raw prefix covering [b0,b1) are
		// immutable while scanning continues, so the payload closure can
		// run concurrently with later Scans.
		raw, ix, a, b := sc.Raw(), sc.IndexSnapshot(), b0, b1
		req := &ShardRequest{
			// The final shard count is unknown while the stream is still
			// arriving; Count carries the cap so index stays in range.
			Index: idx, Count: MaxShards, Params: params,
			Stream: view,
			encode: func() ([]byte, error) { return trace.AppendSlicePayload(nil, raw, &ix, a, b) },
		}
		mu.Lock()
		stats = append(stats, nil)
		mu.Unlock()
		res.Shards++
		if res.FirstShardNs == 0 {
			res.FirstShardNs = time.Since(start).Nanoseconds()
		}
		b0, lo = b1, hi
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
			st, err := runner.RunShard(ctx, req)
			if err != nil {
				fail(fmt.Errorf("ingest: shard %d: %w", idx, err))
				return
			}
			mu.Lock()
			stats[idx] = st
			mu.Unlock()
		}()
		return nil
	}

	for {
		// A cancelled request stops the scan between blocks; in-flight
		// shard goroutines see the same cancellation through ctx.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, err := sc.Scan()
		if err == io.EOF {
			break
		}
		if err != nil {
			if overLimit() {
				return nil, &BadSegmentError{Err: fmt.Errorf("stream exceeds %d bytes", limit)}
			}
			return nil, &BadSegmentError{Err: err}
		}
		if sc.Blocks()-b0 >= shardBlocks {
			if err := dispatch(sc.Blocks(), len(sc.Stream().Refs)); err != nil {
				return nil, err
			}
		}
		if failed() {
			break
		}
	}
	res.StagedNs = time.Since(start).Nanoseconds()
	res.Refs = len(sc.Stream().Refs)
	res.Bytes = sc.Offset()
	if res.Refs == 0 {
		return nil, &BadSegmentError{Err: fmt.Errorf("stream has no events")}
	}
	if lo < res.Refs && !failed() {
		if err := dispatch(sc.Blocks(), res.Refs); err != nil {
			return nil, err
		}
	}
	wg.Wait()
	mu.Lock()
	err = firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	merged := &sim.ShardStats{}
	for _, st := range stats {
		merged.Merge(st)
	}
	res.Stats = merged
	res.TotalNs = time.Since(start).Nanoseconds()
	return res, nil
}
