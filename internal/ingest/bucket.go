package ingest

import "time"

// bucket is a token-bucket rate limiter in debt form. An upload is
// admitted whenever the balance is non-negative and is then charged its
// full size — the charge may drive the balance negative ("debt"),
// making subsequent uploads wait until the debt drains at the sustained
// rate. Admitting on non-negative balance, rather than requiring the
// full size in tokens up front, means a segment larger than the burst
// depth is still ingestible; it just forces a proportionally longer
// quiet period afterwards. Rejected uploads are charged for the bytes
// actually read, so a client hammering an over-quota tenant still pays
// for the bandwidth it consumed.
//
// The zero bucket (rate 0) admits everything. All methods are named
// *Locked: the owning Staging's mutex serialises access.
type bucket struct {
	rate  int64 // bytes per second; 0 disables the limiter
	burst int64 // positive balance cap
	// tokens is the current balance in bytes; negative is debt.
	// guarded by mu (the owning Staging's mutex)
	tokens int64
	// last is the most recent refill timestamp.
	// guarded by mu
	last time.Time
}

// refillLocked credits tokens accrued since the last refill.
func (b *bucket) refillLocked(now time.Time) {
	if b.rate <= 0 {
		return
	}
	if b.last.IsZero() {
		b.last, b.tokens = now, b.burst
		return
	}
	el := now.Sub(b.last)
	if el <= 0 {
		return
	}
	b.tokens += int64(el) * b.rate / int64(time.Second)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// admitLocked reports how long until the next upload would be admitted;
// 0 means admit now.
func (b *bucket) admitLocked(now time.Time) time.Duration {
	if b.rate <= 0 {
		return 0
	}
	b.refillLocked(now)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens) * time.Second / time.Duration(b.rate)
}

// chargeLocked debits n bytes (may drive the balance negative).
func (b *bucket) chargeLocked(now time.Time, n int64) {
	if b.rate <= 0 {
		return
	}
	b.refillLocked(now)
	b.tokens -= n
}
