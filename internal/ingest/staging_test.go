package ingest

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// smtbUpload is a small valid SMTB upload body.
func smtbUpload(t *testing.T) []byte {
	t.Helper()
	tr := &trace.Trace{Name: "up", Events: []trace.Event{
		{Kind: trace.KindPrim, Op: "car", Args: []string{"(a b)"}, Result: "a"},
		{Kind: trace.KindPrim, Op: "cdr", Args: []string{"(a b)"}, Result: "(b)"},
		{Kind: trace.KindPrim, Op: "cons", Args: []string{"a", "(b)"}, Result: "(a b)"},
	}}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStagingPushSnapshotConsume(t *testing.T) {
	s := NewStaging(Limits{})
	up := smtbUpload(t)

	seg, err := s.Push("alpha", bytes.NewReader(up))
	if err != nil {
		t.Fatal(err)
	}
	if seg.RawBytes != int64(len(up)) || len(seg.Stream.Refs) != 3 {
		t.Fatalf("segment: %d bytes, %d refs; want %d bytes, 3 refs", seg.RawBytes, len(seg.Stream.Refs), len(up))
	}
	if _, err := s.Push("alpha", bytes.NewReader(up)); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Status("alpha")
	if !ok || len(st.Segments) != 2 || st.StagedBytes != 2*int64(len(up)) {
		t.Fatalf("status = %+v, ok=%v; want 2 segments of %d bytes", st, ok, 2*len(up))
	}
	if got := s.StagedBytes(); got != 2*int64(len(up)) {
		t.Fatalf("StagedBytes = %d, want %d", got, 2*len(up))
	}

	segs, mark, err := s.Snapshot("alpha")
	if err != nil || len(segs) != 2 {
		t.Fatalf("snapshot: %d segments, err %v", len(segs), err)
	}
	// A push after the snapshot must survive consuming the mark.
	if _, err := s.Push("alpha", bytes.NewReader(up)); err != nil {
		t.Fatal(err)
	}
	s.Consume("alpha", mark)
	st, ok = s.Status("alpha")
	if !ok || len(st.Segments) != 1 {
		t.Fatalf("after consume: %d segments, want the 1 pushed mid-run", len(st.Segments))
	}
	// Consuming the same mark again is a no-op.
	s.Consume("alpha", mark)
	if st, _ := s.Status("alpha"); len(st.Segments) != 1 {
		t.Fatalf("double consume removed the post-snapshot segment")
	}

	freed, n := s.Drop("alpha")
	if freed != int64(len(up)) || n != 1 {
		t.Fatalf("drop freed %d bytes / %d segments, want %d / 1", freed, n, len(up))
	}
	if got := s.StagedBytes(); got != 0 {
		t.Fatalf("StagedBytes after drop = %d, want 0", got)
	}
	if s.TenantCount() != 0 {
		t.Fatalf("tenant state leaked after drop")
	}
	if _, _, err := s.Snapshot("alpha"); err == nil {
		t.Fatal("snapshot of empty tenant succeeded")
	}
}

// countingReader counts bytes handed out; its source never ends.
type countingReader struct {
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	c.n += int64(len(p))
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestStagingQuotaBoundsMemory is the backpressure acceptance check:
// over-quota uploads are rejected with a retryable QuotaError, staging
// never grows past the per-tenant cap, and — crucially — the rejected
// upload is never buffered beyond the remaining allowance plus one byte.
func TestStagingQuotaBoundsMemory(t *testing.T) {
	up := smtbUpload(t)
	quota := int64(len(up)) + 10 // room for one segment, not two
	s := NewStaging(Limits{TenantBytes: quota})

	if _, err := s.Push("alpha", bytes.NewReader(up)); err != nil {
		t.Fatal(err)
	}
	src := &countingReader{}
	_, err := s.Push("alpha", src)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-quota push: err %v, want QuotaError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("QuotaError.RetryAfter = %v, want positive", qe.RetryAfter)
	}
	// Remaining allowance is 10 bytes; the bounded reader may pull one
	// sentinel byte past it but no more (modulo the copy buffer handed to
	// Read, which is what an HTTP body reader would bound anyway).
	if src.n > 64<<10 {
		t.Fatalf("rejected push buffered %d bytes from an endless reader", src.n)
	}
	if st, _ := s.Status("alpha"); st.StagedBytes > quota {
		t.Fatalf("staging grew past quota: %d > %d", st.StagedBytes, quota)
	}

	// A full tenant rejects even a tiny upload without staging it.
	big := NewStaging(Limits{TenantBytes: int64(len(up))})
	if _, err := big.Push("alpha", bytes.NewReader(up)); err != nil {
		t.Fatal(err)
	}
	if _, err := big.Push("alpha", bytes.NewReader(up)); err == nil {
		t.Fatal("push past quota succeeded")
	}
	if got := big.StagedBytes(); got != int64(len(up)) {
		t.Fatalf("StagedBytes = %d after rejected push, want %d", got, len(up))
	}
}

func TestStagingRateLimit(t *testing.T) {
	up := smtbUpload(t)
	s := NewStaging(Limits{RateBytes: 10, BurstBytes: 5})
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })

	// First push: balance starts at burst (non-negative) → admitted,
	// then charged len(up) bytes, driving the bucket into debt.
	if _, err := s.Push("alpha", bytes.NewReader(up)); err != nil {
		t.Fatal(err)
	}
	_, err := s.Push("alpha", bytes.NewReader(up))
	var re *RateLimitedError
	if !errors.As(err, &re) {
		t.Fatalf("second push: err %v, want RateLimitedError", err)
	}
	debt := int64(len(up)) - 5
	wantWait := time.Duration(debt) * time.Second / 10
	if re.RetryAfter != wantWait {
		t.Fatalf("RetryAfter = %v, want %v (debt %d at 10 B/s)", re.RetryAfter, wantWait, debt)
	}

	// Advancing the clock by the advertised wait drains the debt exactly.
	now = now.Add(re.RetryAfter)
	if _, err := s.Push("alpha", bytes.NewReader(up)); err != nil {
		t.Fatalf("push after advertised Retry-After: %v", err)
	}

	// Tenants are limited independently.
	if _, err := s.Push("beta", bytes.NewReader(up)); err != nil {
		t.Fatalf("fresh tenant rate-limited by alpha's debt: %v", err)
	}
}

// TestStagingRejectedUploadStillCharged: a malformed upload pays for
// the bytes it made the server read, so garbage cannot bypass pacing.
func TestStagingRejectedUploadStillCharged(t *testing.T) {
	s := NewStaging(Limits{RateBytes: 10, BurstBytes: 5})
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })

	_, err := s.Push("alpha", strings.NewReader("not a trace at all"))
	var be *BadSegmentError
	if !errors.As(err, &be) {
		t.Fatalf("garbage push: err %v, want BadSegmentError", err)
	}
	if st, ok := s.Status("alpha"); ok && len(st.Segments) != 0 {
		t.Fatalf("garbage was staged: %+v", st)
	}
	_, err = s.Push("alpha", strings.NewReader("more garbage"))
	var re *RateLimitedError
	if !errors.As(err, &re) {
		t.Fatalf("push after charged garbage: err %v, want RateLimitedError", err)
	}
}

func TestStagingSegmentAndTenantCaps(t *testing.T) {
	up := smtbUpload(t)
	s := NewStaging(Limits{MaxSegments: 2, MaxTenants: 1})
	for i := 0; i < 2; i++ {
		if _, err := s.Push("alpha", bytes.NewReader(up)); err != nil {
			t.Fatal(err)
		}
	}
	var qe *QuotaError
	if _, err := s.Push("alpha", bytes.NewReader(up)); !errors.As(err, &qe) {
		t.Fatalf("push past segment cap: err %v, want QuotaError", err)
	}
	if _, err := s.Push("beta", bytes.NewReader(up)); !errors.As(err, &qe) {
		t.Fatalf("push past tenant cap: err %v, want QuotaError", err)
	}
	// Dropping alpha frees the tenant slot.
	s.Drop("alpha")
	if _, err := s.Push("beta", bytes.NewReader(up)); err != nil {
		t.Fatalf("push after slot freed: %v", err)
	}
}

func TestStagingPushReadError(t *testing.T) {
	s := NewStaging(Limits{})
	r := io.MultiReader(strings.NewReader("SMTB"), iotestErrReader{})
	if _, err := s.Push("alpha", r); err == nil {
		t.Fatal("push with failing reader succeeded")
	}
	if got := s.StagedBytes(); got != 0 {
		t.Fatalf("StagedBytes = %d after failed read, want 0", got)
	}
}

type iotestErrReader struct{}

func (iotestErrReader) Read([]byte) (int, error) { return 0, errors.New("connection reset") }
