package ingest

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// SaveCache lands a completed ingest job in the experiments disk-cache
// layout under dir/ingest/: each staged segment as a content-addressed
// .refs stream (reloadable by trace.ReadStream, exactly like the
// experiment runner's cached streams) and the merged statistics as a
// .json document keyed by the job's segment hashes plus parameters.
// Writes are atomic (temp file + rename), mirroring the experiments
// cache, and idempotent — re-ingesting the same bytes overwrites the
// same paths. Callers treat failures as best-effort: the merged result
// has already been computed and returned.
func SaveCache(dir, tenantID string, segs []Segment, params []byte, merged *sim.ShardStats) ([]string, error) {
	sub := filepath.Join(dir, "ingest")
	var paths []string
	job := fnv.New64a()
	job.Write(params)
	var hb [8]byte
	for _, seg := range segs {
		binary.LittleEndian.PutUint64(hb[:], seg.Hash)
		job.Write(hb[:])
		p := filepath.Join(sub, fmt.Sprintf("%s.%016x.refs", tenantID, seg.Hash))
		data, _, err := seg.Encoded()
		if err != nil {
			return paths, err
		}
		if err := writeAtomic(p, func(f *os.File) error { _, err := f.Write(data); return err }); err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	p := filepath.Join(sub, fmt.Sprintf("%s.%016x.json", tenantID, job.Sum64()))
	err := writeAtomic(p, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(merged)
	})
	if err != nil {
		return paths, err
	}
	return append(paths, p), nil
}

// writeAtomic writes a file via temp + rename so a crashed or
// concurrent run never leaves a truncated file (the experiments cache's
// saveCached pattern).
func writeAtomic(path string, encode func(f *os.File) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) // smallvet:ignore errdrop -- best-effort cleanup; the encode error is the one to surface
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) // smallvet:ignore errdrop -- best-effort cleanup; the close error is the one to surface
		return err
	}
	return os.Rename(tmp.Name(), path)
}
