package ingest

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"repro/internal/trace"
)

// Segment is one staged upload, decoded to a reference stream. The
// canonical SMRS encoding (with its SMTX index) is retained or produced
// lazily via Encoded, so the replay layer can carve shard payloads as
// byte-range sub-slices instead of re-encoding.
type Segment struct {
	Stream   *trace.Stream
	RawBytes int64  // wire size of the upload (the quota charge)
	Hash     uint64 // FNV-1a of the raw upload bytes (cache keying)
	enc      *segmentEnc
}

// segmentEnc caches a segment's SMRS encoding plus parsed index. It is
// shared by pointer across Segment value copies (staging snapshots), so
// the encode cost is paid at most once per staged upload.
type segmentEnc struct {
	once sync.Once
	data []byte       // complete SMRS encoding
	idx  *trace.Index // parsed SMTX footer; nil when data carries none
	err  error
}

// NewSegment wraps an already decoded stream as a segment with a lazy
// shared encoding — the form Push stages and tests build directly.
func NewSegment(st *trace.Stream) Segment {
	return Segment{Stream: st, enc: &segmentEnc{}}
}

// encodeSegment produces the canonical indexed SMRS encoding of st.
func encodeSegment(st *trace.Stream) ([]byte, *trace.Index, error) {
	var buf bytes.Buffer
	if err := trace.WriteStream(&buf, st); err != nil {
		return nil, nil, err
	}
	data := buf.Bytes()
	ix, err := trace.ParseIndex(data)
	if err != nil {
		// The encoder just wrote this footer; failing to parse it back
		// is a bug, not an input problem.
		return nil, nil, fmt.Errorf("ingest: reparsing encoded segment index: %w", err)
	}
	return data, ix, nil
}

// Encoded returns the segment's complete SMRS encoding and its parsed
// SMTX index. For SMRS uploads that already carried a verified index
// these are the original upload bytes (zero re-encode); otherwise the
// stream is encoded canonically once and cached. The index is nil only
// when the stream is too large for the encoder to index.
func (seg Segment) Encoded() ([]byte, *trace.Index, error) {
	if seg.enc == nil {
		// Hand-built segment with no shared cache: encode per call.
		return encodeSegment(seg.Stream)
	}
	seg.enc.once.Do(func() {
		if seg.enc.data != nil {
			return // pre-filled by Push from the upload bytes
		}
		seg.enc.data, seg.enc.idx, seg.enc.err = encodeSegment(seg.Stream)
	})
	return seg.enc.data, seg.enc.idx, seg.enc.err
}

// SegmentInfo is the wire summary of a staged segment.
type SegmentInfo struct {
	Name   string `json:"name"`
	Refs   int    `json:"refs"`
	Blocks int    `json:"blocks"`
	Bytes  int64  `json:"bytes"`
	Hash   string `json:"hash"`
}

// Info summarises the segment for wire responses.
func (seg Segment) Info() SegmentInfo {
	return SegmentInfo{
		Name:   seg.Stream.Name,
		Refs:   len(seg.Stream.Refs),
		Blocks: blockCount(len(seg.Stream.Refs)),
		Bytes:  seg.RawBytes,
		Hash:   fmt.Sprintf("%016x", seg.Hash),
	}
}

// TenantStatus reports one tenant's staging state.
type TenantStatus struct {
	Tenant      string        `json:"tenant"`
	Segments    []SegmentInfo `json:"segments"`
	StagedBytes int64         `json:"staged_bytes"`
	QuotaBytes  int64         `json:"quota_bytes"`
	RateBytes   int64         `json:"rate_bytes,omitempty"`
}

// tenant is one tenant's staging state. Every field is serialised by
// the owning Staging's mutex; all methods are *Locked.
type tenant struct {
	// segments holds staged uploads in arrival order.
	// guarded by mu (the owning Staging's mutex)
	segments []Segment
	// bytes is the summed RawBytes of segments (the quota charge).
	// guarded by mu
	bytes int64
	// taken counts segments ever consumed off the front, so snapshot
	// marks stay valid across concurrent pushes.
	// guarded by mu
	taken int64
	// bucket is the tenant's ingest rate limiter.
	// guarded by mu
	bucket bucket
}

// admitLocked applies the pre-read gates: rate debt, segment cap, byte
// quota. It returns the typed rejection, or the byte allowance for the
// read on success.
func (t *tenant) admitLocked(l Limits, now time.Time) (int64, error) {
	if wait := t.bucket.admitLocked(now); wait > 0 {
		return 0, &RateLimitedError{RetryAfter: wait}
	}
	if len(t.segments) >= l.MaxSegments {
		return 0, &QuotaError{Reason: fmt.Sprintf("%d segments staged (cap %d)", len(t.segments), l.MaxSegments), RetryAfter: quotaRetryAfter}
	}
	room := l.TenantBytes - t.bytes
	if room <= 0 {
		return 0, &QuotaError{Reason: fmt.Sprintf("%d bytes staged (quota %d)", t.bytes, l.TenantBytes), RetryAfter: quotaRetryAfter}
	}
	return min(room, MaxSegmentBytes), nil
}

// commitLocked re-applies the caps (a racing push may have filled them
// between admit and commit) and stages the segment.
func (t *tenant) commitLocked(l Limits, seg Segment) error {
	if len(t.segments) >= l.MaxSegments {
		return &QuotaError{Reason: fmt.Sprintf("%d segments staged (cap %d)", len(t.segments), l.MaxSegments), RetryAfter: quotaRetryAfter}
	}
	if t.bytes+seg.RawBytes > l.TenantBytes {
		return &QuotaError{Reason: fmt.Sprintf("segment of %d bytes exceeds remaining quota %d", seg.RawBytes, l.TenantBytes-t.bytes), RetryAfter: quotaRetryAfter}
	}
	t.segments = append(t.segments, seg)
	t.bytes += seg.RawBytes
	return nil
}

func (t *tenant) chargeLocked(now time.Time, n int64) { t.bucket.chargeLocked(now, n) }

// snapshotLocked returns a copy of the staged segments plus a mark that
// consumeLocked uses to remove exactly these segments later, even if
// more were pushed in between.
func (t *tenant) snapshotLocked() ([]Segment, int64) {
	segs := make([]Segment, len(t.segments))
	copy(segs, t.segments)
	return segs, t.markLocked()
}

// markLocked is the consume mark covering everything currently staged.
func (t *tenant) markLocked() int64 { return t.taken + int64(len(t.segments)) }

// emptyLocked reports whether nothing is staged.
func (t *tenant) emptyLocked() bool { return len(t.segments) == 0 }

// consumeLocked removes the segments covered by a snapshot mark,
// returning the bytes and segment count freed.
func (t *tenant) consumeLocked(mark int64) (int64, int) {
	n := min(int(mark-t.taken), len(t.segments))
	if n <= 0 {
		return 0, 0
	}
	var freed int64
	for i := 0; i < n; i++ {
		freed += t.segments[i].RawBytes
	}
	t.segments = append(t.segments[:0:0], t.segments[n:]...)
	t.bytes -= freed
	t.taken += int64(n)
	return freed, n
}

func (t *tenant) statusLocked(id string, l Limits) TenantStatus {
	ts := TenantStatus{
		Tenant:      id,
		Segments:    make([]SegmentInfo, 0, len(t.segments)),
		StagedBytes: t.bytes,
		QuotaBytes:  l.TenantBytes,
		RateBytes:   l.RateBytes,
	}
	for _, seg := range t.segments {
		ts.Segments = append(ts.Segments, seg.Info())
	}
	return ts
}

// Staging holds every tenant's staged segments behind one mutex — the
// serving layer calls it from many request goroutines.
type Staging struct {
	limits Limits
	mu     sync.Mutex
	// now is the clock (injectable for rate-limit tests).
	// guarded by mu
	now func() time.Time
	// tenants maps tenant id to staging state.
	// guarded by mu
	tenants map[string]*tenant
	// stagedBytes totals staged bytes across tenants.
	// guarded by mu
	stagedBytes int64
}

// NewStaging builds a staging area under l (zero fields take defaults).
func NewStaging(l Limits) *Staging {
	return &Staging{limits: l.withDefaults(), now: time.Now, tenants: make(map[string]*tenant)}
}

// Limits returns the effective (default-filled) limits.
func (s *Staging) Limits() Limits { return s.limits }

// SetClock replaces the rate-limiter clock; for tests.
func (s *Staging) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// tenantLocked finds or creates a tenant, enforcing the tenant cap.
func (s *Staging) tenantLocked(id string) (*tenant, error) {
	if t, ok := s.tenants[id]; ok {
		return t, nil
	}
	if len(s.tenants) >= s.limits.MaxTenants {
		return nil, &QuotaError{Reason: fmt.Sprintf("%d tenants staged (cap %d)", len(s.tenants), s.limits.MaxTenants), RetryAfter: quotaRetryAfter}
	}
	t := &tenant{bucket: bucket{rate: s.limits.RateBytes, burst: s.limits.BurstBytes}}
	s.tenants[id] = t
	return t, nil
}

// Push streams one upload into the tenant's staging area. The reader is
// consumed through a bounded buffer: at most the tenant's remaining
// quota plus one byte is ever held, so over-quota uploads are rejected
// without buffering them. The upload is decoded with trace.ReadAuto
// (SMTB, SMRS, or text) and staged as a reference stream; rejected and
// malformed uploads leave staging unchanged but are still charged
// against the tenant's rate bucket for the bytes read.
func (s *Staging) Push(tenantID string, r io.Reader) (Segment, error) {
	s.mu.Lock()
	t, err := s.tenantLocked(tenantID)
	var allow int64
	if err == nil {
		allow, err = t.admitLocked(s.limits, s.now())
	}
	s.mu.Unlock()
	if err != nil {
		return Segment{}, err
	}

	data, hash, over, readErr := readBounded(r, allow)

	// Decode outside the lock; it is CPU work on a bounded buffer.
	var seg Segment
	var decErr error
	if readErr == nil && !over {
		tr, st, err := trace.ReadAuto(bytes.NewReader(data))
		switch {
		case err != nil:
			decErr = &BadSegmentError{Err: err}
		default:
			wasStream := st != nil
			if st == nil {
				st = trace.Preprocess(tr)
			}
			if len(st.Refs) == 0 {
				decErr = &BadSegmentError{Err: fmt.Errorf("trace has no events")}
			} else {
				seg = NewSegment(st)
				seg.RawBytes = int64(len(data))
				seg.Hash = hash
				if wasStream {
					// An SMRS upload whose SMTX footer just survived the
					// decoder's claim-by-claim verification: keep the
					// upload bytes as the segment's encoding, so shard
					// payloads slice them instead of re-encoding.
					if ix, err := trace.ParseIndex(data); err == nil && ix != nil {
						seg.enc.data, seg.enc.idx = data, ix
					}
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	t2, err := s.tenantLocked(tenantID)
	if err != nil {
		return Segment{}, err
	}
	t2.chargeLocked(s.now(), int64(len(data)))
	switch {
	case readErr != nil:
		return Segment{}, fmt.Errorf("ingest: reading upload: %w", readErr)
	case over:
		return Segment{}, &QuotaError{Reason: fmt.Sprintf("upload exceeds allowance of %d bytes", allow), RetryAfter: quotaRetryAfter}
	case decErr != nil:
		return Segment{}, decErr
	}
	if err := t2.commitLocked(s.limits, seg); err != nil {
		return Segment{}, err
	}
	s.stagedBytes += seg.RawBytes
	return seg, nil
}

// Status reports a tenant's staging state; ok is false for a tenant
// with nothing staged and no state.
func (s *Staging) Status(tenantID string) (TenantStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantID]
	if !ok {
		return TenantStatus{Tenant: tenantID, QuotaBytes: s.limits.TenantBytes, RateBytes: s.limits.RateBytes}, false
	}
	return t.statusLocked(tenantID, s.limits), true
}

// Drop discards a tenant's staged segments (and its rate-limit state),
// returning the bytes and segment count freed.
func (s *Staging) Drop(tenantID string) (int64, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantID]
	if !ok {
		return 0, 0
	}
	freed, n := t.consumeLocked(t.markLocked())
	delete(s.tenants, tenantID)
	s.stagedBytes -= freed
	return freed, n
}

// Snapshot returns a copy of the tenant's staged segments plus a mark
// for Consume. An empty snapshot is an error — there is nothing to run.
func (s *Staging) Snapshot(tenantID string) ([]Segment, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantID]
	if !ok {
		return nil, 0, fmt.Errorf("ingest: tenant %q has nothing staged", tenantID)
	}
	segs, mark := t.snapshotLocked()
	if len(segs) == 0 {
		return nil, 0, fmt.Errorf("ingest: tenant %q has nothing staged", tenantID)
	}
	return segs, mark, nil
}

// Consume removes the segments covered by a Snapshot mark — called
// after a run lands, so the quota frees only once results are safe.
// Segments pushed after the snapshot stay staged.
func (s *Staging) Consume(tenantID string, mark int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenantID]
	if !ok {
		return
	}
	freed, _ := t.consumeLocked(mark)
	s.stagedBytes -= freed
	if t.emptyLocked() {
		delete(s.tenants, tenantID)
	}
}

// StagedBytes totals staged bytes across tenants (a metrics gauge).
func (s *Staging) StagedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stagedBytes
}

// TenantCount counts tenants with staging state (a metrics gauge).
func (s *Staging) TenantCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// readBounded reads r to completion into memory, stopping one byte past
// limit (over reports truncation), hashing the bytes read with FNV-1a.
func readBounded(r io.Reader, limit int64) (data []byte, hash uint64, over bool, err error) {
	h := fnv.New64a()
	var buf bytes.Buffer
	n, err := io.Copy(io.MultiWriter(&buf, h), io.LimitReader(r, limit+1))
	if err != nil {
		return nil, 0, false, err
	}
	if n > limit {
		return nil, 0, true, nil
	}
	return buf.Bytes(), h.Sum64(), false, nil
}

// blockCount is the number of SMTB/SMRS blocks covering n refs.
func blockCount(n int) int {
	return (n + trace.BlockEvents - 1) / trace.BlockEvents
}
