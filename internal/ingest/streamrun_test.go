package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/benchprogs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// streamCutPlan is the plan StreamRun's cut rule implies: one shard per
// shardBlocks blocks, last shard taking the remainder.
func streamCutPlan(refs, shardBlocks int) []Shard {
	var plan []Shard
	step := shardBlocks * trace.BlockEvents
	for lo := 0; lo < refs; lo += step {
		plan = append(plan, Shard{Segment: 0, Lo: lo, Hi: min(lo+step, refs)})
	}
	return plan
}

// TestStreamRunMatchesStagedReplay: dispatching shards while the
// stream arrives must not change the merged statistics — StreamRun is
// byte-identical to a staged replay of the plan with the same cuts,
// through both the zero-copy view and the sliced-payload paths.
func TestStreamRunMatchesStagedReplay(t *testing.T) {
	params := sim.Params{TableSize: 256, Seed: 7}
	pj := mustJSON(t, params)
	for _, name := range []string{"slang", "pearl"} {
		b, ok := benchprogs.ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		tr, err := benchprogs.Trace(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := trace.Preprocess(tr)
		var buf bytes.Buffer
		if err := trace.WriteStream(&buf, st); err != nil {
			t.Fatal(err)
		}
		for _, sb := range []int{1, 3} {
			plan := streamCutPlan(len(st.Refs), sb)
			want := foldPlanLocally(t, []*trace.Stream{st}, plan, params)
			for _, fl := range runnerFlavors() {
				t.Run(fmt.Sprintf("%s/blocks=%d/%s", name, sb, fl.name), func(t *testing.T) {
					res, err := StreamRun(context.Background(), fl.runner, bytes.NewReader(buf.Bytes()), 0, sb, pj)
					if err != nil {
						t.Fatal(err)
					}
					if res.Shards != len(plan) {
						t.Errorf("dispatched %d shards, want %d", res.Shards, len(plan))
					}
					if res.Refs != len(st.Refs) {
						t.Errorf("replayed %d refs, want %d", res.Refs, len(st.Refs))
					}
					if res.Bytes != int64(buf.Len()) {
						t.Errorf("consumed %d bytes, want %d", res.Bytes, buf.Len())
					}
					if gj, wj := mustJSON(t, res.Stats), mustJSON(t, want); !bytes.Equal(gj, wj) {
						t.Errorf("streaming != staged for the same cuts:\n got %s\nwant %s", gj, wj)
					}
				})
			}
		}
	}
}

// TestStreamRunRejects covers the hostile inputs: wrong format,
// garbage, empty streams, over-limit bodies — every one a
// BadSegmentError (a 400, never a 500), with staging untouched.
func TestStreamRunRejects(t *testing.T) {
	b, _ := benchprogs.ByName("slang")
	tr, err := benchprogs.Trace(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Preprocess(tr)
	var smrs bytes.Buffer
	if err := trace.WriteStream(&smrs, st); err != nil {
		t.Fatal(err)
	}
	var smtb bytes.Buffer
	if err := trace.WriteBinary(&smtb, tr); err != nil {
		t.Fatal(err)
	}
	var empty bytes.Buffer
	if err := trace.WriteStream(&empty, &trace.Stream{Name: "empty", IDText: []string{""}}); err != nil {
		t.Fatal(err)
	}

	run := func(r *bytes.Reader, limit int64) error {
		_, err := StreamRun(context.Background(), viewRunner(), r, limit, 1, nil)
		return err
	}
	cases := []struct {
		name string
		err  error
	}{
		{"smtb body", run(bytes.NewReader(smtb.Bytes()), 0)},
		{"garbage", run(bytes.NewReader([]byte("not a stream")), 0)},
		{"empty stream", run(bytes.NewReader(empty.Bytes()), 0)},
		{"over limit", run(bytes.NewReader(smrs.Bytes()), 64)},
	}
	for _, c := range cases {
		var bad *BadSegmentError
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !errors.As(c.err, &bad) {
			t.Errorf("%s: error %v is not a BadSegmentError", c.name, c.err)
		}
	}
	if err := run(bytes.NewReader(smrs.Bytes()), 64); err == nil || !strings.Contains(err.Error(), "exceeds 64 bytes") {
		t.Errorf("over-limit error %v does not name the limit", err)
	}
}

// TestStreamRunShardFailure: a failing shard fails the run (and
// cancels the rest) instead of merging partial statistics.
func TestStreamRunShardFailure(t *testing.T) {
	b, _ := benchprogs.ByName("slang")
	tr, err := benchprogs.Trace(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Preprocess(tr)
	var buf bytes.Buffer
	if err := trace.WriteStream(&buf, st); err != nil {
		t.Fatal(err)
	}
	boom := RunnerFunc(func(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error) {
		return nil, fmt.Errorf("shard exploded")
	})
	if _, err := StreamRun(context.Background(), boom, bytes.NewReader(buf.Bytes()), 0, 1, nil); err == nil {
		t.Fatal("failing runner accepted")
	} else if !strings.Contains(err.Error(), "shard exploded") {
		t.Errorf("error %v does not carry the shard failure", err)
	}
}
