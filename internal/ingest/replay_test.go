package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/benchprogs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testRunner replays shards in-process, decoding params as a sim.Params
// JSON document — the same work a worker node does, minus the wire.
func testRunner() RunnerFunc {
	return func(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error) {
		var p sim.Params
		if len(req.Params) > 0 {
			if err := json.Unmarshal(req.Params, &p); err != nil {
				return nil, err
			}
		}
		st, err := trace.ReadStream(bytes.NewReader(req.Payload))
		if err != nil {
			return nil, err
		}
		r, err := sim.RunCtx(ctx, st, p)
		if err != nil {
			return nil, err
		}
		s := sim.ShardOf(r)
		return &s, nil
	}
}

// foldPlanLocally is the independent single-node reference: it replays
// the plan sequentially, slicing directly (no SMRS round trip, no
// parsweep), and folds in plan order. Replay's parallel, wire-encoded
// result must match it byte for byte.
func foldPlanLocally(t *testing.T, segs []*trace.Stream, plan []Shard, p sim.Params) *sim.ShardStats {
	t.Helper()
	var total sim.ShardStats
	for _, sh := range plan {
		sub, err := trace.SliceStream(segs[sh.Segment], sh.Lo, sh.Hi)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.RunCtx(context.Background(), sub, p)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.ShardOf(r)
		total.Merge(&s)
	}
	return &total
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedReplayMatchesSingleNode is the determinism property the
// whole ingest design rests on: for every benchmark trace and every
// tested shard count, the parallel sharded replay (with its SMRS
// encode/decode round trip per shard) produces merged statistics
// byte-identical to a sequential single-node replay of the same plan —
// and for one shard, identical to a plain unsharded sim.RunCtx run.
func TestShardedReplayMatchesSingleNode(t *testing.T) {
	params := sim.Params{TableSize: 256, Seed: 7}
	pj := mustJSON(t, params)

	for _, b := range benchprogs.All() {
		tr, err := benchprogs.Trace(b, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := trace.Preprocess(tr)
		segs := []*trace.Stream{st}

		full, err := sim.RunCtx(context.Background(), st, params)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		fullStats := sim.ShardOf(full)

		for _, k := range []int{1, 2, 3, 7} {
			t.Run(fmt.Sprintf("%s/k=%d", b.Name, k), func(t *testing.T) {
				plan := PlanShards(segs, k)
				got, err := Replay(context.Background(), testRunner(), segs, plan, pj)
				if err != nil {
					t.Fatal(err)
				}
				want := foldPlanLocally(t, segs, plan, params)
				if gj, wj := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(gj, wj) {
					t.Errorf("distributed != single-node for the same plan:\n got %s\nwant %s", gj, wj)
				}
				if k == 1 {
					if gj, fj := mustJSON(t, got), mustJSON(t, &fullStats); !bytes.Equal(gj, fj) {
						t.Errorf("one-shard replay != plain run:\n got %s\nwant %s", gj, fj)
					}
				}
				prims := 0
				for _, r := range st.Refs {
					if r.Kind == trace.RefPrim {
						prims++
					}
				}
				if got.Events != prims {
					t.Errorf("merged Events = %d, want %d primitive events", got.Events, prims)
				}
			})
		}
	}
}

// TestReplayMultiSegment covers the multi-upload path: several staged
// segments replayed as one job, again parallel == sequential.
func TestReplayMultiSegment(t *testing.T) {
	params := sim.Params{TableSize: 128, Seed: 3}
	pj := mustJSON(t, params)
	var segs []*trace.Stream
	for _, name := range []string{"slang", "lyra"} {
		b, ok := benchprogs.ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		tr, err := benchprogs.Trace(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, trace.Preprocess(tr))
	}
	for _, k := range []int{1, 3, 7} {
		plan := PlanShards(segs, k)
		got, err := Replay(context.Background(), testRunner(), segs, plan, pj)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := foldPlanLocally(t, segs, plan, params)
		if gj, wj := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(gj, wj) {
			t.Errorf("k=%d: distributed != single-node:\n got %s\nwant %s", k, gj, wj)
		}
	}
}

// TestReplayRejectsBadPlans: Replay revalidates, so a corrupted plan
// cannot double-count or drop ranges.
func TestReplayRejectsBadPlans(t *testing.T) {
	b, _ := benchprogs.ByName("slang")
	tr, err := benchprogs.Trace(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Preprocess(tr)
	segs := []*trace.Stream{st}
	pj := mustJSON(t, sim.Params{})

	if _, err := Replay(context.Background(), testRunner(), segs, nil, pj); err == nil {
		t.Error("empty plan accepted")
	}
	overlap := []Shard{
		{Segment: 0, Lo: 0, Hi: len(st.Refs)},
		{Segment: 0, Lo: 0, Hi: len(st.Refs)},
	}
	if _, err := Replay(context.Background(), testRunner(), segs, overlap, pj); err == nil {
		t.Error("overlapping plan accepted")
	}
}
