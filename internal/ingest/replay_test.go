package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/benchprogs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testRunner replays shards from their wire payload, decoding params as
// a sim.Params JSON document — the same work a worker node does, minus
// the wire. Materializing the payload exercises the indexed byte-range
// slicer for indexed segments (and the SliceStream re-encode fallback
// otherwise).
func testRunner() RunnerFunc {
	return func(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error) {
		var p sim.Params
		if len(req.Params) > 0 {
			if err := json.Unmarshal(req.Params, &p); err != nil {
				return nil, err
			}
		}
		payload, err := req.ShardPayload()
		if err != nil {
			return nil, err
		}
		st, err := trace.ReadStream(bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		r, err := sim.RunCtx(ctx, st, p)
		if err != nil {
			return nil, err
		}
		s := sim.ShardOf(r)
		return &s, nil
	}
}

// viewRunner replays shards from their in-process zero-copy view — the
// standalone daemon's fast path, no encode or decode at all.
func viewRunner() RunnerFunc {
	return func(ctx context.Context, req *ShardRequest) (*sim.ShardStats, error) {
		var p sim.Params
		if len(req.Params) > 0 {
			if err := json.Unmarshal(req.Params, &p); err != nil {
				return nil, err
			}
		}
		if req.Stream == nil {
			return nil, fmt.Errorf("shard %d has no in-process view", req.Index)
		}
		r, err := sim.RunCtx(ctx, req.Stream, p)
		if err != nil {
			return nil, err
		}
		s := sim.ShardOf(r)
		return &s, nil
	}
}

// runnerFlavors names the two shard consumption paths every replay
// property must hold for: the wire payload (indexed byte-range slice)
// and the in-process zero-copy view.
func runnerFlavors() []struct {
	name   string
	runner RunnerFunc
} {
	return []struct {
		name   string
		runner RunnerFunc
	}{
		{"payload", testRunner()},
		{"view", viewRunner()},
	}
}

// foldPlanLocally is the independent single-node reference: it replays
// the plan sequentially, slicing directly (no SMRS round trip, no
// parsweep), and folds in plan order. Replay's parallel, wire-encoded
// result must match it byte for byte.
func foldPlanLocally(t *testing.T, segs []*trace.Stream, plan []Shard, p sim.Params) *sim.ShardStats {
	t.Helper()
	var total sim.ShardStats
	for _, sh := range plan {
		sub, err := trace.SliceStream(segs[sh.Segment], sh.Lo, sh.Hi)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.RunCtx(context.Background(), sub, p)
		if err != nil {
			t.Fatal(err)
		}
		s := sim.ShardOf(r)
		total.Merge(&s)
	}
	return &total
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedReplayMatchesSingleNode is the determinism property the
// whole ingest design rests on: for every benchmark trace and every
// tested shard count, the parallel sharded replay (with its SMRS
// encode/decode round trip per shard) produces merged statistics
// byte-identical to a sequential single-node replay of the same plan —
// and for one shard, identical to a plain unsharded sim.RunCtx run.
func TestShardedReplayMatchesSingleNode(t *testing.T) {
	params := sim.Params{TableSize: 256, Seed: 7}
	pj := mustJSON(t, params)

	for _, b := range benchprogs.All() {
		tr, err := benchprogs.Trace(b, 1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := trace.Preprocess(tr)
		segs := []*trace.Stream{st}

		full, err := sim.RunCtx(context.Background(), st, params)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		fullStats := sim.ShardOf(full)

		for _, k := range []int{1, 2, 3, 7} {
			for _, fl := range runnerFlavors() {
				t.Run(fmt.Sprintf("%s/k=%d/%s", b.Name, k, fl.name), func(t *testing.T) {
					plan := PlanShards(segs, k)
					got, err := ReplayStreams(context.Background(), fl.runner, segs, plan, pj)
					if err != nil {
						t.Fatal(err)
					}
					want := foldPlanLocally(t, segs, plan, params)
					if gj, wj := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(gj, wj) {
						t.Errorf("distributed != single-node for the same plan:\n got %s\nwant %s", gj, wj)
					}
					if k == 1 {
						if gj, fj := mustJSON(t, got), mustJSON(t, &fullStats); !bytes.Equal(gj, fj) {
							t.Errorf("one-shard replay != plain run:\n got %s\nwant %s", gj, fj)
						}
					}
					prims := 0
					for _, r := range st.Refs {
						if r.Kind == trace.RefPrim {
							prims++
						}
					}
					if got.Events != prims {
						t.Errorf("merged Events = %d, want %d primitive events", got.Events, prims)
					}
				})
			}
		}
	}
}

// TestReplayMultiSegment covers the multi-upload path: several staged
// segments replayed as one job, again parallel == sequential.
func TestReplayMultiSegment(t *testing.T) {
	params := sim.Params{TableSize: 128, Seed: 3}
	pj := mustJSON(t, params)
	var segs []*trace.Stream
	for _, name := range []string{"slang", "lyra"} {
		b, ok := benchprogs.ByName(name)
		if !ok {
			t.Fatalf("no benchmark %q", name)
		}
		tr, err := benchprogs.Trace(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, trace.Preprocess(tr))
	}
	for _, k := range []int{1, 3, 7} {
		plan := PlanShards(segs, k)
		want := foldPlanLocally(t, segs, plan, params)
		for _, fl := range runnerFlavors() {
			got, err := ReplayStreams(context.Background(), fl.runner, segs, plan, pj)
			if err != nil {
				t.Fatalf("k=%d/%s: %v", k, fl.name, err)
			}
			if gj, wj := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(gj, wj) {
				t.Errorf("k=%d/%s: distributed != single-node:\n got %s\nwant %s", k, fl.name, gj, wj)
			}
		}
	}
}

// TestReplayRejectsBadPlans: Replay revalidates, so a corrupted plan
// cannot double-count or drop ranges.
func TestReplayRejectsBadPlans(t *testing.T) {
	b, _ := benchprogs.ByName("slang")
	tr, err := benchprogs.Trace(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Preprocess(tr)
	segs := []*trace.Stream{st}
	pj := mustJSON(t, sim.Params{})

	if _, err := ReplayStreams(context.Background(), testRunner(), segs, nil, pj); err == nil {
		t.Error("empty plan accepted")
	}
	overlap := []Shard{
		{Segment: 0, Lo: 0, Hi: len(st.Refs)},
		{Segment: 0, Lo: 0, Hi: len(st.Refs)},
	}
	if _, err := ReplayStreams(context.Background(), testRunner(), segs, overlap, pj); err == nil {
		t.Error("overlapping plan accepted")
	}
}

// TestReplayPreIndexUploads: uploads written before the SMTX footer
// existed stage, plan, and replay exactly like indexed ones — the
// segment falls back to a canonical (indexed) re-encode the first time
// a wire payload is needed, and the merged statistics are unchanged.
func TestReplayPreIndexUploads(t *testing.T) {
	params := sim.Params{TableSize: 256, Seed: 7}
	pj := mustJSON(t, params)
	b, _ := benchprogs.ByName("slang")
	tr, err := benchprogs.Trace(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Preprocess(tr)
	var old bytes.Buffer
	if err := trace.WriteStreamNoIndex(&old, st); err != nil {
		t.Fatal(err)
	}

	s := NewStaging(Limits{})
	if _, err := s.Push("tenant", bytes.NewReader(old.Bytes())); err != nil {
		t.Fatalf("pre-index upload rejected: %v", err)
	}
	segs, _, err := s.Snapshot("tenant")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3} {
		plan := PlanSegments(segs, k)
		want := foldPlanLocally(t, []*trace.Stream{st}, plan, params)
		for _, fl := range runnerFlavors() {
			got, err := Replay(context.Background(), fl.runner, segs, plan, pj)
			if err != nil {
				t.Fatalf("k=%d/%s: %v", k, fl.name, err)
			}
			if gj, wj := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(gj, wj) {
				t.Errorf("k=%d/%s: pre-index replay differs:\n got %s\nwant %s", k, fl.name, gj, wj)
			}
		}
	}
}
