package ingest

import (
	"fmt"

	"repro/internal/trace"
)

// MaxShards bounds a shard plan — far above any useful worker count,
// low enough that per-shard bookkeeping stays trivial.
const MaxShards = 4096

// Shard is a contiguous ref range of one staged segment. Lo is always a
// multiple of trace.BlockEvents and Hi is either one too or the segment
// end: shard cuts happen only at the codec's block boundaries, so each
// shard round-trips through the SMRS encoder at block granularity.
type Shard struct {
	Segment int `json:"segment"` // index into the staged segment list
	Lo      int `json:"lo"`      // first ref, inclusive
	Hi      int `json:"hi"`      // last ref, exclusive
}

// PlanShards splits the segments into at most want contiguous
// block-aligned shards, never cutting across a segment. Blocks are
// spread evenly — global block j of T total goes to shard
// floor(j*want/T) — then runs of same-shard same-segment blocks merge
// into one Shard. When segments outnumber want the plan exceeds want
// (every segment needs at least one shard); when blocks are scarcer
// than want the plan is shorter. The plan depends only on the segment
// ref counts and want, so every node planning the same staging snapshot
// produces the same plan.
func PlanShards(segs []*trace.Stream, want int) []Shard {
	want = max(1, min(want, MaxShards))
	total := 0
	for _, st := range segs {
		total += blockCount(len(st.Refs))
	}
	if total == 0 {
		return nil
	}
	want = min(want, total)
	out := make([]Shard, 0, min(want, MaxShards))
	g, prev := 0, -1
	for i, st := range segs {
		for b := 0; b < blockCount(len(st.Refs)); b++ {
			lo := b * trace.BlockEvents
			hi := min(lo+trace.BlockEvents, len(st.Refs))
			w := g * want / total
			if n := len(out) - 1; n >= 0 && w == prev && out[n].Segment == i && out[n].Hi == lo {
				out[n].Hi = hi
			} else {
				out = append(out, Shard{Segment: i, Lo: lo, Hi: hi})
			}
			prev = w
			g++
		}
	}
	return out
}

// ValidatePlan checks a plan against the segments it will slice: every
// shard in range, cuts block-aligned, shards ordered, non-overlapping,
// and together covering every segment exactly. Replay revalidates so a
// hand-built (or hostile) plan cannot slice out of bounds, double-count
// a range, or silently drop one.
func ValidatePlan(segs []*trace.Stream, plan []Shard) error {
	if len(plan) > MaxShards {
		return fmt.Errorf("ingest: plan has %d shards (cap %d)", len(plan), MaxShards)
	}
	seg, off := 0, 0
	skipDone := func() {
		for seg < len(segs) && off == len(segs[seg].Refs) {
			seg, off = seg+1, 0
		}
	}
	skipDone()
	for i, sh := range plan {
		if sh.Segment < 0 || sh.Segment >= len(segs) {
			return fmt.Errorf("ingest: shard %d: segment %d out of range 0..%d", i, sh.Segment, len(segs)-1)
		}
		n := len(segs[sh.Segment].Refs)
		if sh.Lo < 0 || sh.Hi <= sh.Lo || sh.Hi > n {
			return fmt.Errorf("ingest: shard %d: range [%d,%d) invalid for segment of %d refs", i, sh.Lo, sh.Hi, n)
		}
		if sh.Segment != seg || sh.Lo != off {
			return fmt.Errorf("ingest: shard %d: range [%d,%d) of segment %d overlaps or leaves a gap (expected segment %d offset %d)",
				i, sh.Lo, sh.Hi, sh.Segment, seg, off)
		}
		if sh.Lo%trace.BlockEvents != 0 || (sh.Hi != n && sh.Hi%trace.BlockEvents != 0) {
			return fmt.Errorf("ingest: shard %d: range [%d,%d) not aligned to %d-event blocks", i, sh.Lo, sh.Hi, trace.BlockEvents)
		}
		off = sh.Hi
		skipDone()
	}
	if seg != len(segs) {
		return fmt.Errorf("ingest: plan stops at segment %d offset %d, leaving %d segments uncovered", seg, off, len(segs)-seg)
	}
	return nil
}
