package ingest

import (
	"fmt"

	"repro/internal/trace"
)

// MaxShards bounds a shard plan — far above any useful worker count,
// low enough that per-shard bookkeeping stays trivial.
const MaxShards = 4096

// Shard is a contiguous ref range of one staged segment. Lo is always a
// multiple of trace.BlockEvents and Hi is either one too or the segment
// end: shard cuts happen only at the codec's block boundaries, so each
// shard round-trips through the SMRS encoder at block granularity.
type Shard struct {
	Segment int `json:"segment"` // index into the staged segment list
	Lo      int `json:"lo"`      // first ref, inclusive
	Hi      int `json:"hi"`      // last ref, exclusive
}

// PlanCounts splits segments of the given ref counts into at most want
// contiguous block-aligned shards, never cutting across a segment.
// Blocks are spread evenly — global block j of T total goes to shard
// floor(j*want/T) — then runs of same-shard same-segment blocks merge
// into one Shard. When segments outnumber want the plan exceeds want
// (every segment needs at least one shard); when blocks are scarcer
// than want the plan is shorter. The plan depends only on the ref
// counts and want — not on any event payloads — so planning over an
// SMTX index costs O(blocks), every node planning the same staging
// snapshot produces the same plan, and plan latency is independent of
// how many events the segments hold.
func PlanCounts(counts []int, want int) []Shard {
	want = max(1, min(want, MaxShards))
	total := 0
	for _, n := range counts {
		total += blockCount(n)
	}
	if total == 0 {
		return nil
	}
	want = min(want, total)
	out := make([]Shard, 0, min(want, MaxShards))
	g, prev := 0, -1
	for i, n := range counts {
		for b := 0; b < blockCount(n); b++ {
			lo := b * trace.BlockEvents
			hi := min(lo+trace.BlockEvents, n)
			w := g * want / total
			if n := len(out) - 1; n >= 0 && w == prev && out[n].Segment == i && out[n].Hi == lo {
				out[n].Hi = hi
			} else {
				out = append(out, Shard{Segment: i, Lo: lo, Hi: hi})
			}
			prev = w
			g++
		}
	}
	return out
}

// PlanShards plans over fully decoded streams; see PlanCounts.
func PlanShards(segs []*trace.Stream, want int) []Shard {
	return PlanCounts(streamCounts(segs), want)
}

// PlanSegments plans over staged segments; see PlanCounts.
func PlanSegments(segs []Segment, want int) []Shard {
	return PlanCounts(segmentCounts(segs), want)
}

// ValidatePlanCounts checks a plan against the ref counts of the
// segments it will slice: every shard in range, cuts block-aligned,
// shards ordered, non-overlapping, and together covering every segment
// exactly. Replay revalidates so a hand-built (or hostile) plan cannot
// slice out of bounds, double-count a range, or silently drop one.
func ValidatePlanCounts(counts []int, plan []Shard) error {
	if len(plan) > MaxShards {
		return fmt.Errorf("ingest: plan has %d shards (cap %d)", len(plan), MaxShards)
	}
	seg, off := 0, 0
	skipDone := func() {
		for seg < len(counts) && off == counts[seg] {
			seg, off = seg+1, 0
		}
	}
	skipDone()
	for i, sh := range plan {
		if sh.Segment < 0 || sh.Segment >= len(counts) {
			return fmt.Errorf("ingest: shard %d: segment %d out of range 0..%d", i, sh.Segment, len(counts)-1)
		}
		n := counts[sh.Segment]
		if sh.Lo < 0 || sh.Hi <= sh.Lo || sh.Hi > n {
			return fmt.Errorf("ingest: shard %d: range [%d,%d) invalid for segment of %d refs", i, sh.Lo, sh.Hi, n)
		}
		if sh.Segment != seg || sh.Lo != off {
			return fmt.Errorf("ingest: shard %d: range [%d,%d) of segment %d overlaps or leaves a gap (expected segment %d offset %d)",
				i, sh.Lo, sh.Hi, sh.Segment, seg, off)
		}
		if sh.Lo%trace.BlockEvents != 0 || (sh.Hi != n && sh.Hi%trace.BlockEvents != 0) {
			return fmt.Errorf("ingest: shard %d: range [%d,%d) not aligned to %d-event blocks", i, sh.Lo, sh.Hi, trace.BlockEvents)
		}
		off = sh.Hi
		skipDone()
	}
	if seg != len(counts) {
		return fmt.Errorf("ingest: plan stops at segment %d offset %d, leaving %d segments uncovered", seg, off, len(counts)-seg)
	}
	return nil
}

// ValidatePlan validates a plan against fully decoded streams; see
// ValidatePlanCounts.
func ValidatePlan(segs []*trace.Stream, plan []Shard) error {
	return ValidatePlanCounts(streamCounts(segs), plan)
}

func streamCounts(segs []*trace.Stream) []int {
	counts := make([]int, len(segs))
	for i, st := range segs {
		counts[i] = len(st.Refs)
	}
	return counts
}

func segmentCounts(segs []Segment) []int {
	counts := make([]int, len(segs))
	for i, sg := range segs {
		counts[i] = len(sg.Stream.Refs)
	}
	return counts
}
