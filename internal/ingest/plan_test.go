package ingest

import (
	"testing"

	"repro/internal/trace"
)

// refStream fabricates a stream of n refs (content is irrelevant to
// planning, which looks only at lengths).
func refStream(n int) *trace.Stream {
	return &trace.Stream{Refs: make([]trace.Ref, n)}
}

func TestPlanShardsProperties(t *testing.T) {
	B := trace.BlockEvents
	cases := []struct {
		name string
		segs []int // ref counts
		want int
	}{
		{"one tiny segment", []int{5}, 4},
		{"one block exactly", []int{B}, 2},
		{"many blocks even", []int{10 * B}, 4},
		{"many blocks ragged", []int{10*B + 17}, 3},
		{"more shards than blocks", []int{2*B + 1}, 100},
		{"multi segment", []int{3*B + 5, B, 2*B + 1}, 4},
		{"segments outnumber shards", []int{5, 5, 5, 5, 5}, 2},
		{"zero-length segment skipped", []int{0, 2 * B, 0, B}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			segs := make([]*trace.Stream, len(tc.segs))
			nonEmpty := 0
			for i, n := range tc.segs {
				segs[i] = refStream(n)
				if n > 0 {
					nonEmpty++
				}
			}
			plan := PlanShards(segs, tc.want)
			if err := ValidatePlan(segs, plan); err != nil {
				t.Fatalf("planner emitted an invalid plan: %v", err)
			}
			if len(plan) > MaxShards {
				t.Fatalf("plan has %d shards, over the cap", len(plan))
			}
			// The plan must never split below block granularity, so it has
			// at most min(want, total blocks) + one extra cut per extra
			// segment; and it always covers each non-empty segment.
			if nonEmpty > 0 && len(plan) < nonEmpty {
				t.Fatalf("plan has %d entries for %d non-empty segments", len(plan), nonEmpty)
			}
			// Determinism: replanning gives the identical plan.
			again := PlanShards(segs, tc.want)
			if len(again) != len(plan) {
				t.Fatalf("replanning changed the plan: %v vs %v", again, plan)
			}
			for i := range plan {
				if plan[i] != again[i] {
					t.Fatalf("replanning changed shard %d: %v vs %v", i, plan[i], again[i])
				}
			}
		})
	}
}

func TestPlanShardsEmpty(t *testing.T) {
	if plan := PlanShards(nil, 4); plan != nil {
		t.Errorf("plan over no segments: %v, want nil", plan)
	}
	if plan := PlanShards([]*trace.Stream{refStream(0)}, 4); plan != nil {
		t.Errorf("plan over empty segment: %v, want nil", plan)
	}
}

// TestValidatePlanRejectsHostility covers the plans Replay must refuse:
// truncated coverage, overlaps, gaps, misaligned cuts, and out-of-range
// coordinates. A distributed job that silently dropped or double-ran a
// range would return plausible-but-wrong merged statistics, so these
// must all fail loudly.
func TestValidatePlanRejectsHostility(t *testing.T) {
	B := trace.BlockEvents
	segs := []*trace.Stream{refStream(3*B + 7), refStream(B)}
	good := PlanShards(segs, 3)
	if err := ValidatePlan(segs, good); err != nil {
		t.Fatalf("fixture plan invalid: %v", err)
	}

	bad := []struct {
		name string
		plan []Shard
	}{
		{"empty plan leaves segments uncovered", nil},
		{"truncated", good[:len(good)-1]},
		{"segment out of range", []Shard{{Segment: 2, Lo: 0, Hi: B}}},
		{"negative lo", []Shard{{Segment: 0, Lo: -B, Hi: B}}},
		{"hi past end", []Shard{{Segment: 0, Lo: 0, Hi: 4 * B}}},
		{"inverted range", []Shard{{Segment: 0, Lo: B, Hi: B}}},
		{"gap at start", []Shard{
			{Segment: 0, Lo: B, Hi: 3*B + 7}, {Segment: 1, Lo: 0, Hi: B}}},
		{"overlap", []Shard{
			{Segment: 0, Lo: 0, Hi: 2 * B}, {Segment: 0, Lo: B, Hi: 3*B + 7},
			{Segment: 1, Lo: 0, Hi: B}}},
		{"misaligned cut", []Shard{
			{Segment: 0, Lo: 0, Hi: B + 1}, {Segment: 0, Lo: B + 1, Hi: 3*B + 7},
			{Segment: 1, Lo: 0, Hi: B}}},
		{"segment skipped", []Shard{{Segment: 0, Lo: 0, Hi: 3*B + 7}}},
		{"segments out of order", []Shard{
			{Segment: 1, Lo: 0, Hi: B}, {Segment: 0, Lo: 0, Hi: 3*B + 7}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidatePlan(segs, tc.plan); err == nil {
				t.Errorf("plan %v accepted, want rejection", tc.plan)
			}
		})
	}

	oversized := make([]Shard, MaxShards+1)
	if err := ValidatePlan(segs, oversized); err == nil {
		t.Error("plan over the shard cap accepted")
	}
}
