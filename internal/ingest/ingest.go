// Package ingest implements smalld's streaming trace-ingestion layer.
//
// Clients push trace uploads (SMTB binary traces, SMRS reference
// streams, or text traces — sniffed by trace.ReadAuto) into per-tenant
// staging areas. Staging is bounded three ways, and every rejection is
// a typed error the serving layer maps onto 429/Retry-After
// backpressure:
//
//   - a per-tenant byte quota (Limits.TenantBytes): the staging reader
//     never buffers more than the tenant's remaining quota plus one
//     byte, so sustained over-quota load cannot grow memory past the
//     cap;
//   - a per-tenant segment-count cap and a global tenant-count cap;
//   - a token-bucket rate limit in debt form (see bucket.go): any
//     single segment is admitted when the tenant owes nothing, then
//     charged in full, so over-rate clients are paced to the sustained
//     rate without making large segments impossible.
//
// Staged segments are then sharded at SMTB/SMRS block boundaries
// (plan.go) and replayed map-reduce style (replay.go): each shard is a
// self-contained reference stream replayed on a fresh machine, and the
// per-shard statistics fold with sim.ShardStats.Merge in plan order, so
// a distributed run is byte-identical to a local run of the same plan.
package ingest

import (
	"fmt"
	"time"
)

// Named staging limits. Allocation and buffering on the ingest path is
// clamped against these (the discipline smallvet's decodelimit analyzer
// enforces for decoders).
const (
	// MaxSegmentBytes bounds one uploaded segment regardless of quota —
	// matched to the RPC wire body limit so any staged segment can ride
	// an SMCR frame.
	MaxSegmentBytes = 16 << 20
	// DefaultTenantBytes is the per-tenant staging quota.
	DefaultTenantBytes = 64 << 20
	// DefaultMaxTenants caps distinct tenants with staged data.
	DefaultMaxTenants = 64
	// DefaultMaxSegments caps staged segments per tenant.
	DefaultMaxSegments = 256
	// quotaRetryAfter is the Retry-After hint for quota rejections:
	// quota frees only when a run consumes staging (or a DELETE drops
	// it), so the hint is a polling interval, not a computed wait.
	quotaRetryAfter = 5 * time.Second
)

// Limits configures a Staging area. Zero values take the defaults
// above; RateBytes 0 disables rate limiting.
type Limits struct {
	TenantBytes int64 // per-tenant staged-byte quota
	MaxTenants  int   // distinct tenants with staged data
	MaxSegments int   // staged segments per tenant
	RateBytes   int64 // per-tenant sustained ingest rate, bytes/sec (0 = unlimited)
	BurstBytes  int64 // bucket depth (default: RateBytes)
}

func (l Limits) withDefaults() Limits {
	if l.TenantBytes <= 0 {
		l.TenantBytes = DefaultTenantBytes
	}
	if l.MaxTenants <= 0 {
		l.MaxTenants = DefaultMaxTenants
	}
	if l.MaxSegments <= 0 {
		l.MaxSegments = DefaultMaxSegments
	}
	if l.BurstBytes <= 0 {
		l.BurstBytes = l.RateBytes
	}
	return l
}

// RateLimitedError reports an upload rejected by the tenant's rate
// limiter. The serving layer maps it to 429 with Retry-After set from
// RetryAfter (when the tenant's debt will have drained).
type RateLimitedError struct {
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("ingest: rate limited, retry in %s", e.RetryAfter.Round(time.Millisecond))
}

// QuotaError reports staging full: tenant byte quota, segment cap, or
// tenant cap. Mapped to 429 with a polling Retry-After — the condition
// clears when staged data is consumed by a run or dropped.
type QuotaError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return "ingest: staging quota exceeded: " + e.Reason
}

// BadSegmentError wraps a decode failure of the uploaded bytes — a
// client error (400), never retryable.
type BadSegmentError struct {
	Err error
}

func (e *BadSegmentError) Error() string { return "ingest: bad segment: " + e.Err.Error() }
func (e *BadSegmentError) Unwrap() error { return e.Err }
