// Package cache implements the fully associative LRU data cache the
// thesis compares the LPT against (§5.2.5, Table 5.4, Figs 5.4–5.5). The
// cachable unit is one two-pointer list cell; a cache line holds LineSize
// consecutive cells, so larger lines prefetch neighbouring cells and
// reward spatial locality.
package cache

// Cache is a fully associative LRU cache over a cell address space.
type Cache struct {
	lines    int
	lineSize int64
	// LRU list of resident line tags; index 0 is most recently used.
	slot map[int64]*node
	head *node // most recently used
	tail *node // least recently used
	n    int
	// freeList recycles evicted nodes so a full cache allocates nothing
	// per miss (the simulator replays millions of accesses per sweep).
	freeList *node

	hits   int64
	misses int64
}

type node struct {
	tag        int64
	prev, next *node
}

// New returns a cache with the given number of lines, each holding
// lineSize cells.
func New(lines, lineSize int) *Cache {
	if lines < 1 {
		lines = 1
	}
	if lineSize < 1 {
		lineSize = 1
	}
	return &Cache{
		lines:    lines,
		lineSize: int64(lineSize),
		slot:     make(map[int64]*node, lines),
	}
}

// Lines returns the line count.
func (c *Cache) Lines() int { return c.lines }

// LineSize returns the cells per line.
func (c *Cache) LineSize() int { return int(c.lineSize) }

// Hits and Misses report accumulated access outcomes.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// HitRate returns hits/(hits+misses) as a percentage.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return 100 * float64(c.hits) / float64(total)
}

// Access references the cell at addr, returning whether it hit. On a miss
// the containing line is fetched, evicting the least recently used line
// if the cache is full.
func (c *Cache) Access(addr int64) bool {
	tag := addr
	if addr < 0 {
		// floor division for negative addresses
		tag = addr - (c.lineSize - 1)
	}
	tag /= c.lineSize
	if n, ok := c.slot[tag]; ok {
		c.hits++
		c.touch(n)
		return true
	}
	c.misses++
	n := c.freeList
	if n != nil {
		c.freeList = n.next
		n.tag = tag
		n.next = nil
	} else {
		n = &node{tag: tag}
	}
	c.slot[tag] = n
	c.pushFront(n)
	c.n++
	if c.n > c.lines {
		evict := c.tail
		c.unlink(evict)
		delete(c.slot, evict.tag)
		c.n--
		evict.prev = nil
		evict.next = c.freeList
		c.freeList = evict
	}
	return false
}

// Reset empties the cache and reconfigures its geometry, recycling node
// and map storage. A reset cache is equivalent to New(lines, lineSize).
func (c *Cache) Reset(lines, lineSize int) {
	if lines < 1 {
		lines = 1
	}
	if lineSize < 1 {
		lineSize = 1
	}
	c.lines = lines
	c.lineSize = int64(lineSize)
	for n := c.head; n != nil; {
		next := n.next
		n.prev, n.next = nil, c.freeList
		c.freeList = n
		n = next
	}
	c.head, c.tail = nil, nil
	c.n = 0
	c.hits, c.misses = 0, 0
	if c.slot == nil {
		c.slot = make(map[int64]*node, lines)
	} else {
		clear(c.slot)
	}
}

func (c *Cache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *Cache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *Cache) touch(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
