package cache

import (
	"math/rand"
	"testing"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(2, 1)
	if c.Access(10) {
		t.Error("cold access should miss")
	}
	if !c.Access(10) {
		t.Error("second access should hit")
	}
	c.Access(20) // fills cache
	c.Access(30) // evicts LRU (10)
	if c.Access(10) {
		t.Error("evicted line should miss")
	}
	if !c.Access(30) {
		t.Error("resident line should hit")
	}
	if c.Hits() != 2 || c.Misses() != 4 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(3, 1)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(1) // 1 becomes MRU; LRU is 2
	c.Access(4) // evicts 2
	if c.Access(2) {
		t.Error("2 should have been evicted")
	}
	// That miss reinserted 2, evicting the then-LRU line 3.
	if !c.Access(1) || !c.Access(4) || !c.Access(2) {
		t.Error("1, 4, 2 should be resident")
	}
	if c.Access(3) {
		t.Error("3 should have been evicted by 2's reinsertion")
	}
}

func TestLineSizePrefetch(t *testing.T) {
	c := New(4, 4)
	c.Access(0) // miss, fetches cells 0-3
	for a := int64(1); a < 4; a++ {
		if !c.Access(a) {
			t.Errorf("cell %d should be in the fetched line", a)
		}
	}
	if c.Access(4) {
		t.Error("cell 4 is in the next line")
	}
}

func TestNegativeAddresses(t *testing.T) {
	c := New(8, 4)
	c.Access(-1) // line containing -4..-1
	if !c.Access(-2) {
		t.Error("-2 shares the line with -1")
	}
	if c.Access(0) {
		t.Error("0 is in a different line from -1")
	}
}

func TestHitRate(t *testing.T) {
	c := New(4, 1)
	for i := 0; i < 10; i++ {
		c.Access(1)
	}
	if got := c.HitRate(); got != 90 {
		t.Errorf("HitRate = %v, want 90", got)
	}
	empty := New(4, 1)
	if empty.HitRate() != 0 {
		t.Error("empty cache hit rate should be 0")
	}
}

// TestCapacityNeverExceeded: resident line count stays bounded under
// random access.
func TestCapacityNeverExceeded(t *testing.T) {
	c := New(16, 2)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Access(int64(r.Intn(500) - 250))
		if c.n > c.lines {
			t.Fatalf("resident lines %d > capacity %d", c.n, c.lines)
		}
		if len(c.slot) != c.n {
			t.Fatalf("slot map size %d != n %d", len(c.slot), c.n)
		}
	}
}

// TestInclusionProperty: a bigger LRU cache hits whenever a smaller one
// does (stack property of LRU).
func TestInclusionProperty(t *testing.T) {
	small := New(8, 1)
	big := New(32, 1)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		addr := int64(r.Intn(64))
		sh := small.Access(addr)
		bh := big.Access(addr)
		if sh && !bh {
			t.Fatal("small cache hit where big cache missed: LRU inclusion violated")
		}
	}
	if big.Hits() < small.Hits() {
		t.Error("bigger cache should hit at least as often")
	}
}
