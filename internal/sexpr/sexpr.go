// Package sexpr implements Lisp s-expressions: atoms (symbols, integers,
// floats, strings) and list cells, together with a reader, a printer, and
// the structural metrics used throughout the thesis (n, the number of
// symbols in a list, and p, the number of internal parenthesis pairs;
// §3.3.1, Fig 3.2).
//
// The package is deliberately representation-naive: a list is a linked
// structure of two-pointer Cells exactly as in Fig 2.1. The compact heap
// representations (cdr-coding, linked vectors, CDAR/EPS codes) live in
// internal/heap and are built *from* these values.
package sexpr

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is any Lisp datum: nil, a symbol, a number, a string, or a cell.
// The nil object is represented by the untyped Go nil Value, which keeps
// "nil is both an atom and the empty list" cheap to test.
type Value interface {
	// write appends the printed representation to b.
	write(b *strings.Builder)
}

// Symbol is a Lisp symbol (a name atom).
type Symbol string

// Int is a Lisp integer atom.
type Int int64

// Float is a Lisp floating point atom.
type Float float64

// Str is a Lisp string atom.
type Str string

// Cell is a two-pointer list cell (Fig 2.1a): Car points at the contents,
// Cdr links to the rest of the list.
type Cell struct {
	Car Value
	Cdr Value
}

func (s Symbol) write(b *strings.Builder) { b.WriteString(string(s)) }
func (i Int) write(b *strings.Builder)    { fmt.Fprintf(b, "%d", int64(i)) }

func (f Float) write(b *strings.Builder) {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	b.WriteString(s)
	// Keep the float readable as a float: "0." must not print as "0".
	if !strings.ContainsAny(s, ".eE") {
		b.WriteString(".0")
	}
}

func (s Str) write(b *strings.Builder) {
	// Escape only what the reader understands: quote, backslash, newline
	// and tab. Other bytes (including control characters) pass through.
	b.WriteByte('"')
	for _, r := range string(s) {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

func (c *Cell) write(b *strings.Builder) {
	b.WriteByte('(')
	for {
		if c.Car == nil {
			b.WriteString("nil")
		} else {
			c.Car.write(b)
		}
		switch cdr := c.Cdr.(type) {
		case nil:
			b.WriteByte(')')
			return
		case *Cell:
			b.WriteByte(' ')
			c = cdr
		default:
			b.WriteString(" . ")
			cdr.write(b)
			b.WriteByte(')')
			return
		}
	}
}

// String renders v in standard Lisp notation. The nil value prints as "nil".
func String(v Value) string {
	if v == nil {
		return "nil"
	}
	var b strings.Builder
	v.write(&b)
	return b.String()
}

// Cons allocates a fresh cell.
func Cons(car, cdr Value) *Cell { return &Cell{Car: car, Cdr: cdr} }

// List builds a proper list from its arguments.
func List(items ...Value) Value {
	var out Value
	for i := len(items) - 1; i >= 0; i-- {
		out = Cons(items[i], out)
	}
	return out
}

// IsAtom reports whether v is an atom. nil counts as an atom, as in Lisp.
func IsAtom(v Value) bool {
	_, cell := v.(*Cell)
	return !cell
}

// IsList reports whether v is nil or a cell.
func IsList(v Value) bool {
	if v == nil {
		return true
	}
	_, ok := v.(*Cell)
	return ok
}

// Car returns the car of v, or nil if v is not a cell ((car nil) = nil).
func Car(v Value) Value {
	if c, ok := v.(*Cell); ok {
		return c.Car
	}
	return nil
}

// Cdr returns the cdr of v, or nil if v is not a cell.
func Cdr(v Value) Value {
	if c, ok := v.(*Cell); ok {
		return c.Cdr
	}
	return nil
}

// Length returns the number of top-level elements of a proper list, and
// whether the list was proper (nil-terminated without dotted tail).
// Circular cdr chains terminate with proper=false after a cycle is found.
func Length(v Value) (n int, proper bool) {
	slow, fast := v, v
	for {
		c, ok := fast.(*Cell)
		if !ok {
			return n, fast == nil
		}
		n++
		fast = c.Cdr
		if n%2 == 0 {
			slow = Cdr(slow)
			if slow == fast {
				return n, false // circular
			}
		}
	}
}

// Eq reports pointer/atom identity: cells must be the same cell, atoms must
// be the same atom value.
func Eq(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ca, aok := a.(*Cell)
	cb, bok := b.(*Cell)
	if aok || bok {
		return aok && bok && ca == cb
	}
	return a == b
}

// Equal reports structural equality (the Lisp equal predicate). It is
// cycle-safe for acyclic inputs up to the given depth of sharing; circular
// structures are compared with a visited-pair set.
func Equal(a, b Value) bool {
	type pair struct{ a, b *Cell }
	var seen map[pair]bool
	var eq func(a, b Value) bool
	eq = func(a, b Value) bool {
		ca, aok := a.(*Cell)
		cb, bok := b.(*Cell)
		if aok != bok {
			return false
		}
		if !aok {
			return Eq(a, b)
		}
		p := pair{ca, cb}
		if seen[p] {
			return true
		}
		if seen == nil {
			seen = make(map[pair]bool)
		}
		seen[p] = true
		return eq(ca.Car, cb.Car) && eq(ca.Cdr, cb.Cdr)
	}
	return eq(a, b)
}

// Copy returns a deep copy of v. Atoms are shared (they are immutable);
// every cell is freshly allocated. Copy panics on circular structure.
func Copy(v Value) Value {
	c, ok := v.(*Cell)
	if !ok {
		return v
	}
	return Cons(Copy(c.Car), Copy(c.Cdr))
}

// Metrics holds the list complexity measures of §3.3.1.
type Metrics struct {
	N int // number of symbols (atoms other than nil) in the list
	P int // number of internal parenthesis pairs (nested sublists)
}

// Measure computes the (n, p) metrics of Fig 3.2 for v. For the list
// (A B C (D E) F G) it returns n=7, p=1; for (A (B (C (D E F) G))) it
// returns n=7, p=3. n counts atom occurrences; p counts non-nil sublist
// occurrences below the top level. n+p is the number of two-pointer cells
// needed (Fig 3.2), n the number of structure-coded tuples.
func Measure(v Value) Metrics {
	var m Metrics
	var walk func(v Value, top bool)
	walk = func(v Value, top bool) {
		for {
			c, ok := v.(*Cell)
			if !ok {
				if v != nil {
					m.N++ // dotted atom tail
				}
				return
			}
			if sub, ok := c.Car.(*Cell); ok {
				m.P++
				walk(sub, false)
			} else if c.Car != nil {
				m.N++
			}
			v = c.Cdr
		}
	}
	if c, ok := v.(*Cell); ok {
		walk(c, true)
	} else if v != nil {
		m.N = 1
	}
	return m
}

// CellCount returns the number of two-pointer cells reachable from v,
// counting shared cells once. It is cycle-safe.
func CellCount(v Value) int {
	seen := make(map[*Cell]bool)
	var walk func(Value)
	walk = func(v Value) {
		c, ok := v.(*Cell)
		if !ok || seen[c] {
			return
		}
		seen[c] = true
		walk(c.Car)
		walk(c.Cdr)
	}
	walk(v)
	return len(seen)
}

// Depth returns the maximum car-nesting depth of v: atoms have depth 0,
// a flat list depth 1, (A (B)) depth 2.
func Depth(v Value) int {
	c, ok := v.(*Cell)
	if !ok {
		return 0
	}
	max := 0
	for c != nil {
		if d := Depth(c.Car); d > max {
			max = d
		}
		next, ok := c.Cdr.(*Cell)
		if !ok {
			break
		}
		c = next
	}
	return max + 1
}

// Symbols appends every symbol occurring in v, in left-to-right order, to
// dst and returns the extended slice.
func Symbols(dst []Symbol, v Value) []Symbol {
	switch t := v.(type) {
	case Symbol:
		return append(dst, t)
	case *Cell:
		dst = Symbols(dst, t.Car)
		return Symbols(dst, t.Cdr)
	default:
		return dst
	}
}
