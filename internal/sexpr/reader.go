package sexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Reader parses s-expressions from a string. It supports lists, dotted
// pairs, integers, floats, strings, symbols, 'x quote shorthand, and
// ;-to-end-of-line comments. Symbol case is preserved.
type Reader struct {
	src []rune
	pos int
	// line tracks the current 1-based line for error messages.
	line int
}

// NewReader returns a Reader over src.
func NewReader(src string) *Reader {
	return &Reader{src: []rune(src), line: 1}
}

// SyntaxError describes a parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sexpr: line %d: %s", e.Line, e.Msg)
}

func (r *Reader) errf(format string, args ...any) error {
	return &SyntaxError{Line: r.line, Msg: fmt.Sprintf(format, args...)}
}

func (r *Reader) peek() (rune, bool) {
	if r.pos >= len(r.src) {
		return 0, false
	}
	return r.src[r.pos], true
}

func (r *Reader) next() (rune, bool) {
	ch, ok := r.peek()
	if ok {
		r.pos++
		if ch == '\n' {
			r.line++
		}
	}
	return ch, ok
}

func (r *Reader) skipSpace() {
	for {
		ch, ok := r.peek()
		if !ok {
			return
		}
		switch {
		case unicode.IsSpace(ch):
			r.next()
		case ch == ';':
			for {
				c, ok := r.next()
				if !ok || c == '\n' {
					break
				}
			}
		default:
			return
		}
	}
}

// More reports whether any non-space, non-comment input remains.
func (r *Reader) More() bool {
	r.skipSpace()
	_, ok := r.peek()
	return ok
}

// Read parses the next datum. At end of input it returns (nil, false, nil);
// the ok result distinguishes "read the atom nil" from "no more input".
func (r *Reader) Read() (v Value, ok bool, err error) {
	r.skipSpace()
	ch, any := r.peek()
	if !any {
		return nil, false, nil
	}
	switch ch {
	case '(', '[':
		v, err = r.readList()
		return v, err == nil, err
	case ')', ']':
		r.next()
		return nil, false, r.errf("unexpected %q", ch)
	case '\'':
		r.next()
		inner, ok, err := r.Read()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, r.errf("quote at end of input")
		}
		return List(Symbol("quote"), inner), true, nil
	case '"':
		v, err = r.readString()
		return v, err == nil, err
	default:
		v, err = r.readAtom()
		return v, err == nil, err
	}
}

// readList consumes a balanced list starting at '(' or '['. Brackets must
// match their own kind: '[' pairs with ']' and '(' with ')'.
func (r *Reader) readList() (Value, error) {
	open, _ := r.next()
	closer := ')'
	if open == '[' {
		closer = ']'
	}
	var items []Value
	dotted := Value(nil)
	sawDot := false
	for {
		r.skipSpace()
		ch, ok := r.peek()
		if !ok {
			return nil, r.errf("unterminated list")
		}
		if ch == ')' || ch == ']' {
			if ch != closer {
				return nil, r.errf("mismatched %q closing %q", ch, open)
			}
			r.next()
			break
		}
		if ch == '.' && r.isDotSeparator() {
			r.next()
			if sawDot {
				return nil, r.errf("multiple dots in list")
			}
			sawDot = true
			tail, ok, err := r.Read()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, r.errf("missing datum after dot")
			}
			dotted = tail
			continue
		}
		item, ok, err := r.Read()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, r.errf("unterminated list")
		}
		if sawDot {
			return nil, r.errf("datum after dotted tail")
		}
		items = append(items, item)
	}
	out := dotted
	for i := len(items) - 1; i >= 0; i-- {
		out = Cons(items[i], out)
	}
	return out, nil
}

// isDotSeparator reports whether the '.' at the current position is a
// dotted-pair separator rather than the start of a symbol or float.
func (r *Reader) isDotSeparator() bool {
	if r.pos+1 >= len(r.src) {
		return true
	}
	nxt := r.src[r.pos+1]
	return unicode.IsSpace(nxt) || nxt == '(' || nxt == ')' || nxt == '[' || nxt == ']'
}

func (r *Reader) readString() (Value, error) {
	r.next() // opening quote
	var b strings.Builder
	for {
		ch, ok := r.next()
		if !ok {
			return nil, r.errf("unterminated string")
		}
		switch ch {
		case '"':
			return Str(b.String()), nil
		case '\\':
			esc, ok := r.next()
			if !ok {
				return nil, r.errf("unterminated escape")
			}
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteRune(esc)
			}
		default:
			b.WriteRune(ch)
		}
	}
}

func isTerminator(ch rune) bool {
	return unicode.IsSpace(ch) || ch == '(' || ch == ')' || ch == '[' ||
		ch == ']' || ch == '"' || ch == ';' || ch == '\''
}

func (r *Reader) readAtom() (Value, error) {
	var b strings.Builder
	for {
		ch, ok := r.peek()
		if !ok || isTerminator(ch) {
			break
		}
		b.WriteRune(ch)
		r.next()
	}
	tok := b.String()
	if tok == "" {
		return nil, r.errf("empty token")
	}
	if tok == "." {
		return nil, r.errf("lone dot is not a datum")
	}
	if tok == "nil" || tok == "NIL" {
		return nil, nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil &&
		strings.ContainsAny(tok, ".eE") && !strings.ContainsAny(tok, "abcdfghijklmnopqrstuvwxyz") {
		return Float(f), nil
	}
	return Symbol(tok), nil
}

// Parse reads a single s-expression from src, requiring that nothing but
// whitespace and comments follow it.
func Parse(src string) (Value, error) {
	r := NewReader(src)
	v, ok, err := r.Read()
	if err != nil {
		return nil, err
	}
	if !ok && r.More() {
		return nil, r.errf("no datum")
	}
	if r.More() {
		return nil, r.errf("trailing input")
	}
	return v, nil
}

// ParseAll reads every s-expression in src.
func ParseAll(src string) ([]Value, error) {
	r := NewReader(src)
	var out []Value
	for r.More() {
		v, ok, err := r.Read()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out, nil
}
