package sexpr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) Value {
	t.Helper()
	v, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return v
}

func TestReadPrintRoundTrip(t *testing.T) {
	cases := []string{
		"nil",
		"a",
		"42",
		"-7",
		"3.5",
		`"hello world"`,
		"(a b c)",
		"(a (b c) d)",
		"(a . b)",
		"(a b . c)",
		"((a) (b) ((c)))",
		"(quote x)",
		"(1 2 3 4 5 6 7 8 9 10)",
		"((nil))",
	}
	for _, src := range cases {
		v := mustParse(t, src)
		got := String(v)
		if got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
}

func TestReadNormalization(t *testing.T) {
	cases := map[string]string{
		"'x":             "(quote x)",
		"( a  b\tc )":    "(a b c)",
		"(a;comment\nb)": "(a b)",
		"()":             "nil",
		"(a b . nil)":    "(a b)",
		"[a b]":          "(a b)",
		"NIL":            "nil",
		"(a (b) . c)":    "(a (b) . c)",
	}
	for src, want := range cases {
		v := mustParse(t, src)
		if got := String(v); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"(a b",
		")",
		"(a . )",
		"(a . b c)",
		"(a . b . c)",
		`"unterminated`,
		"'",
		"(a b]",
		"[a b)",
		"(a))",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseAll(t *testing.T) {
	vs, err := ParseAll("(a) (b c) ; trailing comment\n42")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("got %d values, want 3", len(vs))
	}
	if String(vs[2]) != "42" {
		t.Errorf("third = %s", String(vs[2]))
	}
}

func TestAtomTypes(t *testing.T) {
	if v := mustParse(t, "12"); v != Int(12) {
		t.Errorf("12 parsed as %#v", v)
	}
	if v := mustParse(t, "1.5"); v != Float(1.5) {
		t.Errorf("1.5 parsed as %#v", v)
	}
	if v := mustParse(t, "1.5e3"); v != Float(1500) {
		t.Errorf("1.5e3 parsed as %#v", v)
	}
	if v := mustParse(t, "abc"); v != Symbol("abc") {
		t.Errorf("abc parsed as %#v", v)
	}
	// Symbols that look nearly numeric stay symbols.
	if v := mustParse(t, "1+"); v != Symbol("1+") {
		t.Errorf("1+ parsed as %#v", v)
	}
}

func TestCarCdr(t *testing.T) {
	v := mustParse(t, "(a b c)")
	if Car(v) != Symbol("a") {
		t.Errorf("car = %v", Car(v))
	}
	if String(Cdr(v)) != "(b c)" {
		t.Errorf("cdr = %s", String(Cdr(v)))
	}
	if Car(nil) != nil || Cdr(nil) != nil {
		t.Error("car/cdr of nil should be nil")
	}
	if Car(Symbol("x")) != nil {
		t.Error("car of atom should be nil")
	}
}

func TestLength(t *testing.T) {
	for src, want := range map[string]int{
		"nil": 0, "(a)": 1, "(a b c)": 3, "(a (b c) d)": 3,
	} {
		n, proper := Length(mustParse(t, src))
		if n != want || !proper {
			t.Errorf("Length(%s) = %d,%v want %d,true", src, n, proper, want)
		}
	}
	if n, proper := Length(mustParse(t, "(a . b)")); proper || n != 1 {
		t.Errorf("dotted Length = %d,%v", n, proper)
	}
	// Circular list must terminate.
	c := Cons(Symbol("a"), nil)
	c.Cdr = c
	if _, proper := Length(c); proper {
		t.Error("circular list reported proper")
	}
}

func TestEqAndEqual(t *testing.T) {
	a := mustParse(t, "(a (b) c)")
	b := mustParse(t, "(a (b) c)")
	if Eq(a, b) {
		t.Error("distinct cells must not be Eq")
	}
	if !Eq(a, a) {
		t.Error("same cell must be Eq")
	}
	if !Equal(a, b) {
		t.Error("structurally identical lists must be Equal")
	}
	if Equal(a, mustParse(t, "(a (b) d)")) {
		t.Error("different lists must not be Equal")
	}
	if !Eq(Symbol("x"), Symbol("x")) {
		t.Error("same symbol must be Eq")
	}
	if !Equal(nil, nil) || Equal(nil, Symbol("x")) {
		t.Error("nil equality broken")
	}
}

func TestEqualCircular(t *testing.T) {
	mk := func() *Cell {
		c := Cons(Symbol("a"), nil)
		c.Cdr = c
		return c
	}
	if !Equal(mk(), mk()) {
		t.Error("isomorphic circular lists should be Equal")
	}
}

func TestCopy(t *testing.T) {
	orig := mustParse(t, "(a (b c) d)")
	cp := Copy(orig)
	if !Equal(orig, cp) {
		t.Fatal("copy not Equal to original")
	}
	cp.(*Cell).Car = Symbol("z")
	if Equal(orig, cp) {
		t.Error("mutating copy affected original")
	}
}

func TestMeasure(t *testing.T) {
	// The two worked examples of Fig 3.2.
	cases := []struct {
		src  string
		n, p int
	}{
		{"(A B C (D E) F G)", 7, 1},
		{"(A (B (C (D E F) G)))", 7, 3},
		{"nil", 0, 0},
		{"(a)", 1, 0},
		{"((a))", 1, 1},
		{"(() ())", 0, 0}, // nil elements are atoms, not sublists
		{"(a . b)", 2, 0},
		{"x", 1, 0},
	}
	for _, c := range cases {
		m := Measure(mustParse(t, c.src))
		if m.N != c.n || m.P != c.p {
			t.Errorf("Measure(%s) = n=%d p=%d, want n=%d p=%d", c.src, m.N, m.P, c.n, c.p)
		}
	}
}

func TestMeasureCellIdentity(t *testing.T) {
	// n+p equals the two-pointer cell count for proper nested lists
	// without sharing or nil elements — the Fig 3.2 identity: the first
	// worked example has n=7, p=1 and "8 two-pointer list cells".
	for _, src := range []string{
		"(A B C (D E) F G)", "(a)", "((a) (b (c)) d)", "(((x)))",
		"(A (B (C (D E F) G)))",
	} {
		v := mustParse(t, src)
		m := Measure(v)
		if got, want := CellCount(v), m.N+m.P; got != want {
			t.Errorf("%s: cells=%d, n+p=%d", src, got, want)
		}
	}
}

func TestCellCountSharing(t *testing.T) {
	shared := mustParse(t, "(x y)")
	v := List(shared, shared)
	if got := CellCount(v); got != 4 { // 2 spine + 2 shared
		t.Errorf("CellCount with sharing = %d, want 4", got)
	}
}

func TestDepth(t *testing.T) {
	for src, want := range map[string]int{
		"a": 0, "(a b)": 1, "(a (b) c)": 2, "((a (b)))": 3, "nil": 0,
	} {
		if got := Depth(mustParse(t, src)); got != want {
			t.Errorf("Depth(%s) = %d, want %d", src, got, want)
		}
	}
}

func TestSymbols(t *testing.T) {
	got := Symbols(nil, mustParse(t, "(a (b 1) c . d)"))
	want := []Symbol{"a", "b", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Symbols = %v, want %v", got, want)
	}
}

// randomValue builds a random s-expression for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return Symbol([]string{"a", "b", "c", "foo"}[r.Intn(4)])
		case 1:
			return Int(r.Intn(100))
		case 2:
			return nil
		default:
			return Str("s")
		}
	}
	n := r.Intn(4)
	items := make([]Value, n)
	for i := range items {
		items[i] = randomValue(r, depth-1)
	}
	return List(items...)
}

func TestPropertyRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 5)
		s := String(v)
		back, err := Parse(s)
		if err != nil {
			t.Logf("parse of %q failed: %v", s, err)
			return false
		}
		return Equal(v, back)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyCopyEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 5)
		return Equal(v, Copy(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMeasureNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 6)
		m := Measure(v)
		return m.N >= 0 && m.P >= 0 && m.N <= CellCount(v)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
