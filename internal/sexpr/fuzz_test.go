package sexpr

import "testing"

// FuzzParse checks the reader never panics and that anything it accepts
// survives a print/re-parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(a b c)", "'(x . y)", "((1 2) (3.5))", "nil", `"str\n"`,
		"(a ;c\n b)", "[v w]", "(((", "a . b", "')", "(1e9 -3 +x)",
		"(a (b (c (d (e)))))", `("\"")`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := String(v)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("reprint of %q -> %q unparseable: %v", src, printed, err)
		}
		if !Equal(v, back) {
			t.Fatalf("round trip changed value: %q -> %q", src, printed)
		}
	})
}
