#!/bin/sh
# smoke_dml.sh — end-to-end smoke test for distributed Multilisp.
#
# Builds smalld, starts two workers and a gateway on random ports, and
# proves the Chapter 6 contract over real processes: a gateway-resident
# dml session evaluates a parallel program to the same value a
# single-node interpreter gives, the spawns really landed on the
# workers (their own counters sum to the gateway's), zero
# weight-increment messages are ever sent (no such verb exists), and
# deleting the session drains every reference's weight back to the
# workers through the combining queues. Exits non-zero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
BIN="$TMP/smalld"
cleanup() {
    for p in "${W1:-}" "${W2:-}" "${GW:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() { echo "smoke-dml: FAIL: $*"; exit 1; }

go build -o "$BIN" ./cmd/smalld

# wait_line LOG PREFIX PID -> the suffix of the first log line matching
# PREFIX, waiting for the process to print it.
wait_line() {
    _out=""
    for _ in $(seq 1 100); do
        _out=$(sed -n "s/^$2 //p" "$1" | head -n 1)
        [ -n "$_out" ] && { echo "$_out"; return 0; }
        kill -0 "$3" 2>/dev/null || { echo ""; return 1; }
        sleep 0.1
    done
    echo ""
    return 1
}

# Two workers, each with an HTTP port (scraped for smalld_dml_* below)
# and an RPC port the gateway spawns futures over.
"$BIN" -role worker -addr 127.0.0.1:0 -rpc-addr 127.0.0.1:0 -queue 8 -workers 2 >"$TMP/w1.log" 2>&1 &
W1=$!
"$BIN" -role worker -addr 127.0.0.1:0 -rpc-addr 127.0.0.1:0 -queue 8 -workers 2 >"$TMP/w2.log" 2>&1 &
W2=$!
HTTP1=$(wait_line "$TMP/w1.log" "smalld: listening on" "$W1") || { cat "$TMP/w1.log"; fail "worker 1 startup"; }
HTTP2=$(wait_line "$TMP/w2.log" "smalld: listening on" "$W2") || { cat "$TMP/w2.log"; fail "worker 2 startup"; }
RPC1=$(wait_line "$TMP/w1.log" "smalld: rpc listening on" "$W1") || { cat "$TMP/w1.log"; fail "worker 1 rpc"; }
RPC2=$(wait_line "$TMP/w2.log" "smalld: rpc listening on" "$W2") || { cat "$TMP/w2.log"; fail "worker 2 rpc"; }

"$BIN" -role gateway -addr 127.0.0.1:0 -peers "$RPC1,$RPC2" -health-interval 100ms >"$TMP/gw.log" 2>&1 &
GW=$!
ADDR=$(wait_line "$TMP/gw.log" "smalld: listening on" "$GW") || { cat "$TMP/gw.log"; fail "gateway startup"; }
BASE="http://$ADDR"
echo "smoke-dml: gateway $BASE -> workers $RPC1, $RPC2"

curl -fsS "$BASE/healthz" | grep -q 'workers healthy' || fail "gateway healthz"

# A dml session lives at the gateway (its futures span all workers).
SID=$(curl -fsS "$BASE/v1/sessions" -d '{"backend":"dml"}' |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$SID" ] || fail "dml session create returned no id"
curl -fsS "$BASE/v1/sessions/$SID" | grep -q '"backend": "dml"' || fail "session backend not dml"
S="$BASE/v1/sessions/$SID"

# Parallel evaluation gives the single-node answer: fib over pcall.
OUT=$(curl -fsS "$S/eval" -d '{"expr":"(defun fib (n) (cond ((lessp n 2) n) (t (+ (fib (- n 1)) (fib (- n 2))))))"}')
echo "$OUT" | grep -q '"value"' || fail "defun: $OUT"
OUT=$(curl -fsS "$S/eval" -d '{"expr":"(pcall list (fib 10) (fib 11) (fib 12))"}')
echo "$OUT" | grep -q '(55 89 144)' || fail "distributed pcall: $OUT"

# The three spawns really crossed the wire: the gateway counted them and
# the workers' own counters sum to the same number.
curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_spawns 3$' || fail "gateway spawn gauge"
S1=$(curl -fsS "http://$HTTP1/metrics" | sed -n 's/^smalld_dml_spawns //p')
S2=$(curl -fsS "http://$HTTP2/metrics" | sed -n 's/^smalld_dml_spawns //p')
[ "$((${S1:-0} + ${S2:-0}))" = 3 ] || fail "worker-side spawns $S1 + $S2 != 3"

# Weighted references: copies split weight locally, so no increment
# message is ever sent — the wire has no verb for it.
curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_weight_inc_messages 0$' ||
    fail "weight-increment messages were sent"

# Delete the session: released references flow back through the
# combining queues until no weight is outstanding anywhere.
curl -fsS -X DELETE -o /dev/null "$S" || fail "session delete"
for _ in $(seq 1 100); do
    curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_outstanding_weight 0$' && break
    sleep 0.1
done
curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_outstanding_weight 0$' ||
    fail "outstanding weight never drained after delete"

# Decrement traffic went through the combining queues and is accounted.
METRICS=$(curl -fsS "$BASE/metrics")
for m in smallcluster_dml_sessions_created_total smallcluster_dml_evals_total \
         smallcluster_dml_touches smallcluster_dml_dec_messages; do
    echo "$METRICS" | grep -q "$m" || fail "metrics missing $m"
done

echo "smoke-dml: OK"
