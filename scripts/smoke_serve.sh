#!/bin/sh
# smoke_serve.sh — end-to-end smoke test for smalld.
#
# Builds the daemon, starts it on a random port, walks the API with curl
# (session create/eval/stats, a sim job, backpressure headers, /metrics),
# then SIGTERMs it and checks the graceful drain. Exits non-zero on the
# first failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
BIN="$TMP/smalld"
LOG="$TMP/smalld.log"
cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/smalld

"$BIN" -addr 127.0.0.1:0 -queue 8 -workers 2 >"$LOG" 2>&1 &
PID=$!

# The first log line is "smalld: listening on 127.0.0.1:PORT".
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^smalld: listening on //p' "$LOG")
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "smoke-serve: daemon died at startup"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "smoke-serve: no listen line"; cat "$LOG"; exit 1; }
BASE="http://$ADDR"
echo "smoke-serve: $BASE"

fail() { echo "smoke-serve: FAIL: $*"; exit 1; }

# Health.
curl -fsS "$BASE/healthz" | grep -q ok || fail "healthz"

# Session lifecycle on the SMALL-machine backend.
SID=$(curl -fsS "$BASE/v1/sessions" -d '{"backend":"small"}' |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$SID" ] || fail "session create returned no id"

OUT=$(curl -fsS "$BASE/v1/sessions/$SID/eval" -d '{"expr":"(car (cons (quote a) (quote (b))))"}')
echo "$OUT" | grep -q '"value": "a"' || fail "eval: $OUT"

STATS=$(curl -fsS "$BASE/v1/sessions/$SID")
echo "$STATS" | grep -q '"refops"' || fail "session stats lack machine counters: $STATS"

# A small multi-point sim job on a built-in benchmark trace.
SIM=$(curl -fsS "$BASE/v1/sim" -d '{
  "trace": "slang", "scale": 1,
  "points": [{"table_size": 128}, {"table_size": 256, "seed": 7}]
}')
echo "$SIM" | grep -q '"lpt_hit_rate"' || fail "sim job: $SIM"

# Bad input is a 400, not a 500.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sim" -d '{"trace":"nosuch"}')
[ "$CODE" = 400 ] || fail "bad trace gave $CODE, want 400"

# Metrics inventory.
METRICS=$(curl -fsS "$BASE/metrics")
for m in smalld_requests_total smalld_request_seconds_bucket \
         smalld_sessions_active smalld_evals_total smalld_lpt_refops_total; do
    echo "$METRICS" | grep -q "$m" || fail "metrics missing $m"
done

# Graceful drain on SIGTERM.
kill -TERM "$PID"
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$PID" 2>/dev/null && fail "daemon ignored SIGTERM"
grep -q 'smalld: stopped' "$LOG" || fail "no clean shutdown line"
PID=""

echo "smoke-serve: OK"
