#!/bin/sh
# smoke_ingest.sh — end-to-end smoke test for the ingest layer.
#
# Builds the daemon and tracegen, renders two benchmark traces as SMTB
# files, then drives the full ingest contract over curl against both a
# standalone smalld and a gateway + two workers, each under a tight
# per-tenant quota: pushes are accepted until staging fills, an
# over-quota push gets 429 with Retry-After, a sharded run spread over
# the workers returns a response byte-identical to the standalone
# replay, a streaming SMRS upload dispatches its first shard before
# staging completes (and matches the cluster statistics), consuming the
# run clears the backpressure, and the merged results land in the
# gateway's disk cache and /metrics. Exits non-zero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
BIN="$TMP/smalld"
cleanup() {
    for p in "${SOLO:-}" "${W1:-}" "${W2:-}" "${GW:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() { echo "smoke-ingest: FAIL: $*"; exit 1; }

go build -o "$BIN" ./cmd/smalld
go run ./cmd/tracegen -scale 1 -format binary -bench slang -out "$TMP" >/dev/null
go run ./cmd/tracegen -scale 1 -format binary -bench pearl -out "$TMP" >/dev/null
go run ./cmd/tracegen -scale 1 -format refs -bench lyra -out "$TMP" >/dev/null
SLANG="$TMP/slang.btrace"
PEARL="$TMP/pearl.btrace"
LYRA="$TMP/lyra.refs"

# Quota fits both traces once, with no room for a repeat push.
QUOTA=$(( $(wc -c < "$SLANG") + $(wc -c < "$PEARL") + 16 ))

# wait_line LOG PREFIX PID -> the suffix of the first log line matching
# PREFIX, waiting for the process to print it.
wait_line() {
    _out=""
    for _ in $(seq 1 100); do
        _out=$(sed -n "s/^$2 //p" "$1" | head -n 1)
        [ -n "$_out" ] && { echo "$_out"; return 0; }
        kill -0 "$3" 2>/dev/null || { echo ""; return 1; }
        sleep 0.1
    done
    echo ""
    return 1
}

# Standalone daemon: the single-node reference.
"$BIN" -addr 127.0.0.1:0 -ingest-quota "$QUOTA" >"$TMP/solo.log" 2>&1 &
SOLO=$!
SOLO_ADDR=$(wait_line "$TMP/solo.log" "smalld: listening on" "$SOLO") || { cat "$TMP/solo.log"; fail "standalone startup"; }

# Two workers and a gateway staging ingest at the cluster edge.
"$BIN" -role worker -addr 127.0.0.1:0 -rpc-addr 127.0.0.1:0 -queue 8 -workers 2 >"$TMP/w1.log" 2>&1 &
W1=$!
"$BIN" -role worker -addr 127.0.0.1:0 -rpc-addr 127.0.0.1:0 -queue 8 -workers 2 >"$TMP/w2.log" 2>&1 &
W2=$!
RPC1=$(wait_line "$TMP/w1.log" "smalld: rpc listening on" "$W1") || { cat "$TMP/w1.log"; fail "worker 1 startup"; }
RPC2=$(wait_line "$TMP/w2.log" "smalld: rpc listening on" "$W2") || { cat "$TMP/w2.log"; fail "worker 2 startup"; }
"$BIN" -role gateway -addr 127.0.0.1:0 -peers "$RPC1,$RPC2" -retries 2 -health-interval 100ms \
    -ingest-quota "$QUOTA" -cachedir "$TMP/cache" >"$TMP/gw.log" 2>&1 &
GW=$!
GW_ADDR=$(wait_line "$TMP/gw.log" "smalld: listening on" "$GW") || { cat "$TMP/gw.log"; fail "gateway startup"; }
echo "smoke-ingest: standalone http://$SOLO_ADDR, gateway http://$GW_ADDR -> workers $RPC1, $RPC2 (quota $QUOTA bytes)"

# Stage both traces on both topologies.
for BASE in "http://$SOLO_ADDR" "http://$GW_ADDR"; do
    for F in "$SLANG" "$PEARL"; do
        CODE=$(curl -s -o "$TMP/push.json" -w '%{http_code}' \
            -H 'Content-Type: application/x-smtb' --data-binary @"$F" "$BASE/v1/ingest/t1")
        [ "$CODE" = 202 ] || { cat "$TMP/push.json"; fail "push $F to $BASE gave $CODE"; }
    done
done
grep -q '"refs"' "$TMP/push.json" || fail "push response has no segment info"

# Backpressure: a push past the quota is rejected with 429 + Retry-After
# and staging does not grow.
HDRS=$(curl -s -o /dev/null -D - -H 'Content-Type: application/x-smtb' \
    --data-binary @"$SLANG" "http://$GW_ADDR/v1/ingest/t1" | tr -d '\r')
echo "$HDRS" | grep -q '^HTTP/[0-9.]* 429' || fail "over-quota push not 429: $(echo "$HDRS" | head -1)"
echo "$HDRS" | grep -qi '^Retry-After:' || fail "429 without Retry-After"
STAGED=$(curl -fsS "http://$GW_ADDR/metrics" | sed -n 's/^smallcluster_ingest_staging_bytes //p')
[ "$STAGED" -le "$QUOTA" ] || fail "staging grew past quota: $STAGED > $QUOTA"

# The sharded cluster run is byte-identical to the standalone replay.
RUN='{"point":{"table_size":256,"seed":7},"shards":3}'
curl -fsS -d "$RUN" "http://$SOLO_ADDR/v1/ingest/t1/run" >"$TMP/solo-run.json" || fail "standalone run"
curl -fsS -d "$RUN" "http://$GW_ADDR/v1/ingest/t1/run" >"$TMP/gw-run.json" || fail "gateway run"
cmp -s "$TMP/solo-run.json" "$TMP/gw-run.json" ||
    { diff "$TMP/solo-run.json" "$TMP/gw-run.json" || true; fail "cluster run diverges from standalone"; }
grep -q '"lpt_hits"' "$TMP/gw-run.json" || fail "run response has no stats: $(cat "$TMP/gw-run.json")"

# Streaming ingest: an indexed SMRS upload replays shard-by-shard
# while the bytes arrive. The response records when the first shard
# dispatched and when staging finished — the whole point of the
# streaming path is that the first precedes the second. The merged
# statistics must match between standalone and cluster.
STREAM_Q='shard_blocks=1&params=%7B%22table_size%22%3A256%2C%22seed%22%3A7%7D'
curl -fsS --data-binary @"$LYRA" "http://$SOLO_ADDR/v1/ingest/t1/stream?$STREAM_Q" \
    >"$TMP/solo-stream.json" || fail "standalone stream run"
curl -fsS --data-binary @"$LYRA" "http://$GW_ADDR/v1/ingest/t1/stream?$STREAM_Q" \
    >"$TMP/gw-stream.json" || fail "gateway stream run"
for F in "$TMP/solo-stream.json" "$TMP/gw-stream.json"; do
    FIRST=$(sed -n 's/.*"first_shard_ns": \([0-9]*\).*/\1/p' "$F")
    STAGED=$(sed -n 's/.*"staged_ns": \([0-9]*\).*/\1/p' "$F")
    [ -n "$FIRST" ] && [ -n "$STAGED" ] || { cat "$F"; fail "stream response missing latency split"; }
    [ "$FIRST" -gt 0 ] || fail "first_shard_ns is zero (no shard dispatched?)"
    [ "$FIRST" -lt "$STAGED" ] || fail "first shard at ${FIRST}ns did not precede staging completion at ${STAGED}ns"
done
# Timing differs run to run; the replayed statistics may not.
sed -n '/"result"/,$p' "$TMP/solo-stream.json" >"$TMP/solo-stream-stats.json"
sed -n '/"result"/,$p' "$TMP/gw-stream.json" >"$TMP/gw-stream-stats.json"
cmp -s "$TMP/solo-stream-stats.json" "$TMP/gw-stream-stats.json" ||
    { diff "$TMP/solo-stream-stats.json" "$TMP/gw-stream-stats.json" || true; fail "streaming stats diverge between standalone and cluster"; }
grep -q '"shards": 36' "$TMP/solo-stream.json" || fail "expected 36 one-block shards: $(grep '"shards"' "$TMP/solo-stream.json")"
SOLO_METRICS=$(curl -fsS "http://$SOLO_ADDR/metrics")
echo "$SOLO_METRICS" | grep -q '^smalld_ingest_stream_jobs_total 1' ||
    fail "standalone metrics missing smalld_ingest_stream_jobs_total"

# The run consumed staging: the 429 clears and the same push succeeds.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'Content-Type: application/x-smtb' \
    --data-binary @"$SLANG" "http://$GW_ADDR/v1/ingest/t1")
[ "$CODE" = 202 ] || fail "push after consuming run gave $CODE (backpressure never cleared)"
curl -fsS -X DELETE "http://$GW_ADDR/v1/ingest/t1" >/dev/null || fail "drop"

# Merged results landed in the disk cache and the shard spreading shows
# up in the gateway metrics.
ls "$TMP/cache/ingest"/*.json >/dev/null 2>&1 || fail "no cached run landed in -cachedir"
METRICS=$(curl -fsS "http://$GW_ADDR/metrics")
for m in smallcluster_ingest_bytes_total smallcluster_ingest_segments_total \
         smallcluster_ingest_rejected_total smallcluster_ingest_jobs_total \
         smallcluster_ingest_shards_total smallcluster_ingest_stream_jobs_total; do
    echo "$METRICS" | grep -q "^$m" || fail "gateway metrics missing $m"
done
SHARDS=$(echo "$METRICS" | sed -n 's/^smallcluster_ingest_shards_total //p')
[ "$SHARDS" -ge 2 ] || fail "only $SHARDS shards went over the wire, want >= 2"

echo "smoke-ingest: OK"
