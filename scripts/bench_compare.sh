#!/bin/sh
# Regenerate the trace-pipeline benchmarks into a temp file and compare
# the headline ratios against the committed BENCH_trace.json baseline.
#
#	sh scripts/bench_compare.sh [baseline.json]
#
# Sizes are deterministic and must match exactly; timing ratios drift
# with machine noise, so they are reported side by side with deltas
# rather than gated. Exits non-zero only if a size field changed or the
# regeneration itself failed.
set -eu

baseline=${1:-BENCH_trace.json}
[ -f "$baseline" ] || { echo "bench_compare: no baseline $baseline" >&2; exit 1; }

fresh=$(mktemp /tmp/bench_trace.XXXXXX.json)
trap 'rm -f "$fresh"' EXIT

echo "bench_compare: regenerating (a few minutes)..." >&2
go run ./cmd/tracebench -out "$fresh"

# extract <file> <section> <key...>: walks one level of JSON nesting with
# the small, fixed shape tracebench emits. Avoids a jq dependency.
extract() {
	file=$1 section=$2 key=$3
	awk -v sec="\"$section\"" -v key="\"$key\"" '
		$1 == sec ":" { insec = 1; next }
		insec && $1 == key ":" { gsub(/[",]/, "", $2); print $2; exit }
		insec && /^  [}\]]/ { exit }
	' "$file"
}

status=0
echo "field                          baseline      fresh"
for key in text_bytes binary_bytes refs_bytes; do
	b=$(awk -v key="\"$key\"" '/"total"/{t=1} t && $1 == key ":" {gsub(/,/, "", $2); print $2; exit}' "$baseline")
	f=$(awk -v key="\"$key\"" '/"total"/{t=1} t && $1 == key ":" {gsub(/,/, "", $2); print $2; exit}' "$fresh")
	printf '%-30s %10s %10s' "sizes.total.$key" "$b" "$f"
	if [ "$b" != "$f" ]; then
		printf '   SIZE CHANGED'
		status=1
	fi
	printf '\n'
done
for key in size_text_over_binary_x size_text_over_refs_x \
	decode_text_over_binary_x decode_text_over_streaming_x \
	decode_text_over_refs_x allocs_text_over_binary_x; do
	b=$(extract "$baseline" ratios "$key")
	f=$(extract "$fresh" ratios "$key")
	printf '%-30s %10s %10s\n' "ratios.$key" "$b" "$f"
done
b=$(extract "$baseline" cache speedup_x)
f=$(extract "$fresh" cache speedup_x)
printf '%-30s %10s %10s\n' "cache.speedup_x" "$b" "$f"

if [ "$status" -ne 0 ]; then
	echo "bench_compare: encoded sizes changed — if the format changed on purpose, bump the version byte and rerun make bench-trace" >&2
fi
exit "$status"
