#!/bin/sh
# smoke_cluster.sh — end-to-end smoke test for the smalld cluster.
#
# Builds the daemon, starts two workers and a gateway on random ports,
# then exercises the cluster contract with curl: sticky sessions (same
# worker answers every request for a session), stateless sim jobs, a
# worker kill (only its sessions are lost, stateless traffic keeps
# succeeding, the failover shows up in /metrics), and graceful SIGTERM
# drain of the survivors. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
BIN="$TMP/smalld"
cleanup() {
    for p in "${W1:-}" "${W2:-}" "${GW:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() { echo "smoke-cluster: FAIL: $*"; exit 1; }

go build -o "$BIN" ./cmd/smalld

# wait_line LOG PREFIX PID -> the suffix of the first log line matching
# PREFIX, waiting for the process to print it.
wait_line() {
    _out=""
    for _ in $(seq 1 100); do
        _out=$(sed -n "s/^$2 //p" "$1" | head -n 1)
        [ -n "$_out" ] && { echo "$_out"; return 0; }
        kill -0 "$3" 2>/dev/null || { echo ""; return 1; }
        sleep 0.1
    done
    echo ""
    return 1
}

# Two workers: HTTP plus RPC, both on random ports.
"$BIN" -role worker -addr 127.0.0.1:0 -rpc-addr 127.0.0.1:0 -queue 8 -workers 2 >"$TMP/w1.log" 2>&1 &
W1=$!
"$BIN" -role worker -addr 127.0.0.1:0 -rpc-addr 127.0.0.1:0 -queue 8 -workers 2 >"$TMP/w2.log" 2>&1 &
W2=$!
RPC1=$(wait_line "$TMP/w1.log" "smalld: rpc listening on" "$W1") || { cat "$TMP/w1.log"; fail "worker 1 startup"; }
RPC2=$(wait_line "$TMP/w2.log" "smalld: rpc listening on" "$W2") || { cat "$TMP/w2.log"; fail "worker 2 startup"; }

# The gateway in front of them.
"$BIN" -role gateway -addr 127.0.0.1:0 -peers "$RPC1,$RPC2" -retries 2 -health-interval 100ms >"$TMP/gw.log" 2>&1 &
GW=$!
ADDR=$(wait_line "$TMP/gw.log" "smalld: listening on" "$GW") || { cat "$TMP/gw.log"; fail "gateway startup"; }
BASE="http://$ADDR"
echo "smoke-cluster: gateway $BASE -> workers $RPC1, $RPC2"

curl -fsS "$BASE/healthz" | grep -q 'workers healthy' || fail "gateway healthz"

# Create sessions through the gateway until both workers own at least
# one (gateway-assigned IDs are random, so a handful suffices).
SIDS=""
for _ in $(seq 1 8); do
    SID=$(curl -fsS "$BASE/v1/sessions" -d '{"backend":"small"}' |
        sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
    [ -n "$SID" ] || fail "session create returned no id"
    SIDS="$SIDS $SID"
done

# Sticky routing: the same worker answers every request for a session,
# and interpreter state persists there.
owner_of() {
    curl -fsS -o /dev/null -D - "$BASE/v1/sessions/$1" |
        tr -d '\r' | sed -n 's/^X-Smallcluster-Worker: //p'
}
DEAD_SID="" LIVE_SID=""
for SID in $SIDS; do
    O1=$(owner_of "$SID")
    [ -n "$O1" ] || fail "no worker header for session $SID"
    OUT=$(curl -fsS "$BASE/v1/sessions/$SID/eval" -d '{"expr":"(defun keep () (quote pinned))"}')
    echo "$OUT" | grep -q '"value"' || fail "eval on $SID: $OUT"
    O2=$(owner_of "$SID")
    [ "$O1" = "$O2" ] || fail "session $SID moved: $O1 -> $O2"
    if [ "$O1" = "$RPC1" ]; then DEAD_SID=$SID; else LIVE_SID=$SID; fi
done
[ -n "$DEAD_SID" ] || fail "no session landed on worker 1 out of 8"
[ -n "$LIVE_SID" ] || fail "no session landed on worker 2 out of 8"

# Stateless jobs spread across workers and succeed.
SIM=$(curl -fsS "$BASE/v1/sim" -d '{"trace":"slang","scale":1,"point":{"table_size":128}}')
echo "$SIM" | grep -q '"lpt_hit_rate"' || fail "sim job: $SIM"

# Park distributed Multilisp futures on both workers before the kill:
# least-loaded placement spreads consecutive spawns, so worker 1 will
# take exactly one of them down with it.
DML=$(curl -fsS "$BASE/v1/sessions" -d '{"backend":"dml"}' |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$DML" ] || fail "dml session create returned no id"
OUT=$(curl -fsS "$BASE/v1/sessions/$DML/eval" -d '{"expr":"(defun fib (n) (cond ((lessp n 2) n) (t (+ (fib (- n 1)) (fib (- n 2))))))"}')
echo "$OUT" | grep -q '"value"' || fail "dml defun: $OUT"
curl -fsS "$BASE/v1/sessions/$DML/eval" -d '{"expr":"(setq f1 (future (fib 12)))"}' >/dev/null
curl -fsS "$BASE/v1/sessions/$DML/eval" -d '{"expr":"(setq f2 (future (fib 13)))"}' >/dev/null

# Kill worker 1 hard. Its sessions are lost; everything else keeps working.
kill -9 "$W1"
W1=""
for _ in $(seq 1 100); do
    curl -fsS "$BASE/metrics" | grep -q "smallcluster_worker_healthy{worker=\"$RPC1\"} 0" && break
    sleep 0.1
done
curl -fsS "$BASE/metrics" | grep -q "smallcluster_worker_healthy{worker=\"$RPC1\"} 0" ||
    fail "gateway never noticed the dead worker"

# Stateless traffic: zero failures after the kill.
for i in $(seq 1 5); do
    CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sim" \
        -d '{"trace":"slang","scale":1,"point":{"table_size":128}}')
    [ "$CODE" = 200 ] || fail "stateless job $i after kill gave $CODE"
done

# The dead worker's session answers 503; the survivor's still evals.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/sessions/$DEAD_SID/eval" -d '{"expr":"(keep)"}')
[ "$CODE" = 503 ] || fail "dead session gave $CODE, want 503"
OUT=$(curl -fsS "$BASE/v1/sessions/$LIVE_SID/eval" -d '{"expr":"(keep)"}')
echo "$OUT" | grep -q 'pinned' || fail "surviving session lost state: $OUT"

# Chaos, distributed Multilisp flavor: one of the parked futures died
# with worker 1. Touching both must return promptly with an in-band
# error — no hang, no stuck goroutine — while the survivor's future
# still resolves on its own.
OUT=$(curl -fsS --max-time 30 "$BASE/v1/sessions/$DML/eval" -d '{"expr":"(list (touch f1) (touch f2))"}')
echo "$OUT" | grep -q '"error"' || fail "dml touch of a dead worker's future did not fail: $OUT"

# The failure is counted, no weight-increment message was ever sent,
# and deleting the session recovers all surviving weight: the dead
# worker's share is written off the ledger, the survivor's drains back
# through the combining queues.
curl -fsS "$BASE/metrics" | grep -q 'smallcluster_dml_touch_failures [1-9]' ||
    fail "dml touch failure not counted"
curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_weight_inc_messages 0$' ||
    fail "weight-increment messages were sent"
curl -fsS -X DELETE -o /dev/null "$BASE/v1/sessions/$DML" || fail "dml session delete"
for _ in $(seq 1 100); do
    curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_outstanding_weight 0$' && break
    sleep 0.1
done
curl -fsS "$BASE/metrics" | grep -q '^smallcluster_dml_outstanding_weight 0$' ||
    fail "dml weight not conserved after worker death"

# Failover is visible in the cluster metrics.
METRICS=$(curl -fsS "$BASE/metrics")
for m in smallcluster_requests_total smallcluster_request_seconds_bucket \
         smallcluster_route_session_total smallcluster_route_stateless_total \
         smallcluster_worker_down_total smallcluster_session_unroutable_total \
         smallcluster_dml_spawns smallcluster_dml_touch_failures; do
    echo "$METRICS" | grep -q "$m" || fail "metrics missing $m"
done

# Graceful drain: gateway and surviving worker exit cleanly on SIGTERM.
kill -TERM "$GW" "$W2"
for _ in $(seq 1 100); do
    kill -0 "$GW" 2>/dev/null || kill -0 "$W2" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$GW" 2>/dev/null && fail "gateway ignored SIGTERM"
kill -0 "$W2" 2>/dev/null && fail "worker 2 ignored SIGTERM"
grep -q 'smalld: stopped' "$TMP/gw.log" || fail "gateway: no clean shutdown line"
grep -q 'smalld: stopped' "$TMP/w2.log" || fail "worker 2: no clean shutdown line"
GW="" W2=""

echo "smoke-cluster: OK"
