GO ?= go

.PHONY: build vet test race smoke-serve verify bench bench-parsweep

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel sweep engine is on by default, so the race detector covers
# every experiment's fan-out; verify requires this to pass.
race:
	$(GO) test -race ./...

# End-to-end check of the smalld daemon: build, serve on a random port,
# exercise sessions/sim/metrics with curl, drain on SIGTERM.
smoke-serve:
	sh scripts/smoke_serve.sh

verify: build vet test race smoke-serve

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Allocation and speedup baselines for the sweep engine + pooled
# simulator (recorded in BENCH_parsweep.json).
bench-parsweep:
	$(GO) test -run '^$$' -bench 'Fig5_1$$|Table5_4$$|SweepSpeedup$$' -benchtime 3x .
