GO ?= go

.PHONY: build test race verify bench bench-parsweep

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel sweep engine is on by default, so the race detector covers
# every experiment's fan-out; verify requires this to pass.
race:
	$(GO) test -race ./...

verify: build test race

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Allocation and speedup baselines for the sweep engine + pooled
# simulator (recorded in BENCH_parsweep.json).
bench-parsweep:
	$(GO) test -run '^$$' -bench 'Fig5_1$$|Table5_4$$|SweepSpeedup$$' -benchtime 3x .
