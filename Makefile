GO ?= go

.PHONY: build vet lint test race smoke-serve smoke-cluster smoke-ingest smoke-dml fuzz-corpus smoke-bench-vm smoke-bench-dml verify bench bench-parsweep bench-trace bench-vm bench-ingest bench-dml

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see DESIGN.md "Static analysis"):
# the ten-analyzer smallvet suite — resource close paths, dropped
# errors, goroutine bounds, WaitGroup balance, `// guarded by` lock
# discipline, pooled Reset completeness, interned-opcode dispatch, ctx
# polling, defer-in-loop, decoder allocation limits. Kept separate from
# `vet` so smallvet failures are distinguishable in CI logs; `smallvet
# -json` emits machine-readable findings. Wall-clock is reported so a
# lint slowdown shows up in `make verify` output, not just in CI step
# durations.
lint:
	@start=$$(date +%s%N); \
	$(GO) run ./cmd/smallvet ./...; status=$$?; \
	end=$$(date +%s%N); \
	echo "lint: smallvet (10 analyzers) took $$(( (end - start) / 1000000 )) ms"; \
	exit $$status

test:
	$(GO) test ./...

# The parallel sweep engine is on by default, so the race detector covers
# every experiment's fan-out; verify requires this to pass.
race:
	$(GO) test -race ./...

# End-to-end check of the smalld daemon: build, serve on a random port,
# exercise sessions/sim/metrics with curl, drain on SIGTERM.
smoke-serve:
	sh scripts/smoke_serve.sh

# End-to-end check of the cluster topology: gateway + two workers,
# sticky sessions, stateless spreading, a worker kill (only its
# sessions lost, failover visible in /metrics), SIGTERM drain.
smoke-cluster:
	sh scripts/smoke_cluster.sh

# End-to-end check of the ingest layer: standalone daemon plus a
# gateway + two workers under a tight quota; over-quota pushes must
# 429 with Retry-After, the sharded cluster run must be byte-identical
# to the standalone replay, and merged results must land in the disk
# cache and /metrics.
smoke-ingest:
	sh scripts/smoke_ingest.sh

# Deterministic replay of the codec round-trip properties and the saved
# fuzz corpora under testdata/fuzz (no live fuzzing; use `go test -fuzz`
# for that). Explicit in verify so a format change that breaks a saved
# hostile input fails loudly by name. Covers both untrusted-byte
# decoders: the binary trace codec and the cluster RPC wire protocol.
fuzz-corpus:
	$(GO) test -run 'RoundTrip|^Fuzz' -count 1 ./internal/trace/ ./internal/cluster/wire/

# End-to-end check of distributed Multilisp: gateway + two workers, a
# dml session whose pcall spawns land on real workers over the binary
# verbs, zero weight-increment messages, and full weight recovery on
# session delete.
smoke-dml:
	sh scripts/smoke_dml.sh

# One-iteration pass through cmd/vmbench so the BENCH_vm.json
# regeneration path cannot rot; the numbers go to a scratch file.
smoke-bench-vm:
	$(GO) run ./cmd/vmbench -benchtime 1x -reps 1 -out /tmp/bench_vm_smoke.json

# One-iteration pass through cmd/dmlbench (real TCP workers at 1/2/4)
# so the BENCH_dml.json regeneration path cannot rot; also asserts the
# combining ratio stays above 1 and no weight increment is ever sent.
smoke-bench-dml:
	$(GO) run ./cmd/dmlbench -benchtime 1x -reps 1 -out /tmp/bench_dml_smoke.json

verify: build vet lint test race fuzz-corpus smoke-bench-vm smoke-bench-dml smoke-serve smoke-cluster smoke-ingest smoke-dml

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Allocation and speedup baselines for the sweep engine + pooled
# simulator (recorded in BENCH_parsweep.json).
bench-parsweep:
	$(GO) test -run '^$$' -bench 'Fig5_1$$|Table5_4$$|SweepSpeedup$$' -benchtime 3x .

# Size, codec, and cache baselines for the binary trace pipeline
# (recorded in BENCH_trace.json; diff a fresh run against the committed
# baseline with scripts/bench_compare.sh).
bench-trace:
	$(GO) run ./cmd/tracebench -out BENCH_trace.json

# Interpreter vs bytecode VM baselines: per-eval and trace-generation
# throughput plus allocs/op (recorded in BENCH_vm.json).
bench-vm:
	$(GO) run ./cmd/vmbench -out BENCH_vm.json

# Ingest layer baselines: staging push throughput and sharded replay
# scaling at 1/2/4/8 shards (recorded in BENCH_ingest.json).
bench-ingest:
	$(GO) run ./cmd/ingestbench -out BENCH_ingest.json

# Distributed Multilisp baselines: benchprog evaluation over real SMCR
# workers at 1/2/4 workers — speedup vs single-node, protocol messages
# per remote cons, and the combining-queue ratio (recorded in
# BENCH_dml.json).
bench-dml:
	$(GO) run ./cmd/dmlbench -out BENCH_dml.json
