// Editor: the structure-editor workload (big, deeply structured lists —
// Table 3.1's outlier) used to compare list representation schemes.
// It stores the same document under all four §2.3.3 encodings and
// measures space and traversal cost, then runs the editing trace through
// the Chapter 5 simulator with the two compression policies.
package main

import (
	"fmt"
	"log"

	"repro/internal/benchprogs"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/sexpr"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// A nested "function definition" document like the editor operates on.
	doc, err := sexpr.Parse(`
	  (defun layout (cell grid)
	    (cond ((null grid) (report cell))
	          ((overlap (bbox cell) (bbox (first grid)))
	           (shift cell (spacing (first grid)) (rest grid)))
	          (t (layout cell (rest grid)))))`)
	if err != nil {
		log.Fatal(err)
	}
	met := sexpr.Measure(doc)
	fmt.Printf("document: n=%d symbols, p=%d internal parenthesis pairs\n\n", met.N, met.P)

	// Store under each representation; compare space and traversal touches.
	reps := []heap.Representation{
		heap.NewTwoPtr(4096),
		heap.NewCdr2(8192),
		heap.NewLinkedVec(8192, 8),
		heap.NewCdar(),
		heap.NewOffsetCode(8192),
	}
	fmt.Printf("%-10s %8s %16s\n", "scheme", "words", "traversal reads")
	for _, r := range reps {
		w, err := r.Build(doc)
		if err != nil {
			log.Fatal(err)
		}
		base := r.Touches()
		if err := traverse(r, w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8d %16d\n", r.Name(), r.Words(), r.Touches()-base)
	}
	fmt.Printf("(two-pointer cells = n+p = %d x2 words; structure-coded = n = %d tuples)\n\n",
		met.N+met.P, met.N)

	// Run the editor benchmark trace through the SMALL simulator under
	// both pseudo-overflow policies.
	b, _ := benchprogs.ByName("editor")
	t, err := benchprogs.Trace(b, 1)
	if err != nil {
		log.Fatal(err)
	}
	st := trace.Preprocess(t)
	free, err := sim.Run(st, sim.Params{TableSize: 1 << 15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	size := free.PeakLPT * 2 / 3
	for _, pol := range []struct {
		name string
		p    core.CompressionPolicy
	}{{"Compress-One", core.CompressOne}, {"Compress-All", core.CompressAll}} {
		res, err := sim.Run(st, sim.Params{TableSize: size, Seed: 2, Policy: pol.p})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s table=%d: avg occupancy %.1f, pseudo overflows %d, hit rate %.2f%%\n",
			pol.name, size, res.AvgLPT, res.Machine.LPT.PseudoOverflow, res.LPTHitRate())
	}
}

// traverse walks every cell of the stored structure through the
// representation's own car/cdr operations.
func traverse(r heap.Representation, w heap.Word) error {
	if w.Tag != heap.TagCell {
		return nil
	}
	car, err := r.Car(w)
	if err != nil {
		return err
	}
	if err := traverse(r, car); err != nil {
		return err
	}
	cdr, err := r.Cdr(w)
	if err != nil {
		return err
	}
	return traverse(r, cdr)
}
