// Circuit: the end-to-end pipeline the thesis's evaluation rests on, run
// on the SLANG-like circuit simulator workload — the workload the
// introduction motivates (design and simulation systems built on Lisp).
//
//	Lisp program -> list access trace -> structural locality analysis
//	             -> trace-driven SMALL simulation -> LPT vs data cache
package main

import (
	"fmt"
	"log"

	"repro/internal/benchprogs"
	"repro/internal/locality"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. Run the circuit simulator benchmark under the tracing interpreter.
	b, _ := benchprogs.ByName("slang")
	t, err := benchprogs.Trace(b, 2)
	if err != nil {
		log.Fatal(err)
	}
	s := trace.Summarize(t)
	fmt.Printf("trace: %d list primitive calls across %d function calls (max depth %d)\n",
		s.Primitives, s.Functions, s.MaxDepth)
	fmt.Printf("mix: car %.1f%%  cdr %.1f%%  cons %.1f%%\n",
		s.Pct("car"), s.Pct("cdr"), s.Pct("cons"))

	// 2. Chapter 3: partition the access stream into list sets.
	st := trace.Preprocess(t)
	p := locality.PartitionStream(st, 0.10)
	fmt.Printf("\nstructural locality: %d list sets; %d sets cover 80%% of %d references\n",
		len(p.Sets), p.SetsForRefPct(80), p.Refs)
	prof := locality.LRUStackDistances(p.AccessSeq)
	fmt.Printf("list-set LRU: depth 4 captures %.1f%% of accesses\n", prof.HitRate(4))

	// 3. Chapter 5: replay the trace against a SMALL machine, with a
	// same-size LRU data cache running in parallel on synthetic addresses.
	knee, err := sim.Run(st, sim.Params{TableSize: 1 << 15, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLPT knee (peak occupancy, unbounded table): %d entries\n", knee.PeakLPT)
	size := knee.PeakLPT * 3 / 4
	res, err := sim.Run(st, sim.Params{
		TableSize: size, Seed: 1, CacheEntries: size, CacheLineSize: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at %d entries: LPT hit rate %.2f%% (%d misses), cache hit rate %.2f%% (%d misses)\n",
		size, res.LPTHitRate(), res.LPTMisses, res.CacheHitRate(), res.CacheMisses)
	if res.LPTMisses > 0 {
		fmt.Printf("the Lisp-specific LPT sees %.1fx fewer misses than the LRU cache\n",
			float64(res.CacheMisses)/float64(res.LPTMisses))
	}
	fmt.Printf("reference counting: %d refops, %d entry allocations, %d frees\n",
		res.Machine.LPT.Refops, res.Machine.LPT.Gets, res.Machine.LPT.Frees)
}
