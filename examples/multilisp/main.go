// Multilisp: the Chapter 6 extension — a four-node SMALL system summing a
// distributed tree in parallel with futures, managed by reference
// weighting (copies cost no messages) with combining decrement queues.
package main

import (
	"fmt"
	"log"

	"repro/internal/multilisp"
	"repro/internal/sexpr"
)

func main() {
	sys := multilisp.NewSystem(4)

	// Build a balanced 128-leaf integer tree scattered across the nodes.
	var src func(lo, hi int) string
	src = func(lo, hi int) string {
		if lo == hi {
			return fmt.Sprintf("%d", lo)
		}
		mid := (lo + hi) / 2
		return "(" + src(lo, mid) + " . " + src(mid+1, hi) + ")"
	}
	tree, err := sexpr.Parse(src(1, 128))
	if err != nil {
		log.Fatal(err)
	}
	root := sys.Nodes[0].Build(tree)
	fmt.Printf("built %d cells across %d nodes\n", sys.LiveObjects(), len(sys.Nodes))

	// Parallel reduction: fork futures three levels deep (8 workers).
	sum, err := multilisp.SumAtoms(sys.Nodes[0], root, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel sum of leaves 1..128 = %d (want %d)\n", sum, 128*129/2)

	// pcall: evaluate three argument expressions concurrently.
	n := sys.Nodes[1]
	v, err := multilisp.PCall(
		func(args []multilisp.Ref) (multilisp.Ref, error) {
			total := int64(0)
			for _, a := range args {
				total += int64(a.Atom().(sexpr.Int))
			}
			return multilisp.AtomRef(sexpr.Int(total)), nil
		},
		func() (multilisp.Ref, error) { return multilisp.AtomRef(sexpr.Int(10)), nil },
		func() (multilisp.Ref, error) {
			cell := n.Cons(multilisp.AtomRef(sexpr.Int(30)), multilisp.NilRef)
			car, err := n.Car(cell)
			n.Release(cell)
			return car, err
		},
		func() (multilisp.Ref, error) { return multilisp.AtomRef(sexpr.Int(2)), nil },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pcall sum = %v\n", v.Atom())

	// Drop the root and drain the combining queues: weighted reference
	// counting reclaims the distributed structure with no global pause.
	sys.Nodes[0].Release(root)
	sys.Quiesce()
	st := sys.Stats()
	fmt.Printf("\nreference weighting economics:\n")
	fmt.Printf("  message-free reference copies: %d\n", st.LocalCopies)
	fmt.Printf("  decrement messages sent:       %d\n", st.DecMessages)
	fmt.Printf("  decrements combined in queues: %d\n", st.DecCombined)
	fmt.Printf("  weight-exhaustion indirections:%d\n", st.Indirections)
	fmt.Printf("  objects freed: %d, leaked: %d\n", st.ObjectsFreed, sys.LiveObjects())
	if bad := sys.WeightInvariantViolations(nil); len(bad) > 0 {
		log.Fatalf("weight invariant violated: %v", bad)
	}
	fmt.Println("weight conservation invariant holds")
}
