// Quickstart: drive a SMALL machine directly through the LP request
// interface of §4.3.2.2 — read a list in, access it (watching the LPT
// cache the split), cons without touching the heap, and let reference
// counting reclaim everything.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sexpr"
)

func main() {
	m := core.NewMachine(core.Config{LPTSize: 64})

	// Read in the Fig 2.1 example list.
	datum, err := sexpr.Parse("(this is (a list))")
	if err != nil {
		log.Fatal(err)
	}
	lst, err := m.ReadList(datum, core.NilValue)
	if err != nil {
		log.Fatal(err)
	}
	show := func(label string, v core.Value) {
		sv, err := m.ValueOf(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %s\n", label, sexpr.String(sv))
	}
	show("read in:", lst)

	// First car is an LPT miss: the heap controller splits the object and
	// the LPT caches both halves.
	car, err := m.Car(lst)
	if err != nil {
		log.Fatal(err)
	}
	show("(car l):", car)
	st := m.Stats()
	fmt.Printf("%-28s hits=%d misses=%d heap splits=%d\n",
		"after first access:", st.LPT.Hits, st.LPT.Misses, st.HeapSplits)

	// Second access to the same object: pure LPT hit, no heap traffic.
	cdr, err := m.Cdr(lst)
	if err != nil {
		log.Fatal(err)
	}
	show("(cdr l):", cdr)
	st = m.Stats()
	fmt.Printf("%-28s hits=%d misses=%d heap splits=%d\n",
		"after second access:", st.LPT.Hits, st.LPT.Misses, st.HeapSplits)

	// cons is LPT endo-structure: watch the heap allocation count stay put.
	before := m.Heap().Allocs()
	pair, err := m.Cons(car, cdr)
	if err != nil {
		log.Fatal(err)
	}
	show("(cons (car l) (cdr l)):", pair)
	fmt.Printf("%-28s %d (cons costs no heap cells)\n",
		"heap allocs during cons:", m.Heap().Allocs()-before)

	// Destructive modification through the table.
	z := core.Value{Kind: core.VAtom, Atom: m.Heap().Atoms().Intern(sexpr.Symbol("was"))}
	if err := m.Rplaca(cdr, z); err != nil {
		log.Fatal(err)
	}
	show("after (rplaca (cdr l) 'was):", lst)

	// Releasing the EP references lets reference counting reclaim the
	// table entries. Child decrements are LAZY (§4.3.2.1): a freed entry's
	// children are only decremented when its slot is reused, so a little
	// allocation churn finishes the job.
	for _, v := range []core.Value{pair, cdr, car, lst} {
		m.Release(v)
	}
	fmt.Printf("%-28s live entries=%d (lazy decrement defers the rest)\n",
		"after releasing:", m.InUse())
	var scratch []core.Value
	for i := 0; i < 4; i++ {
		tmp, err := m.ReadList(sexpr.List(sexpr.Symbol("scratch")), core.NilValue)
		if err != nil {
			log.Fatal(err)
		}
		scratch = append(scratch, tmp)
	}
	for _, tmp := range scratch {
		m.Release(tmp)
	}
	freed := m.DrainHeapFrees()
	fmt.Printf("%-28s live entries=%d, heap cells reclaimed=%d\n",
		"after slot reuse + drain:", m.InUse(), freed)
}
