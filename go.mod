module repro

// golang.org/x/tools/go/analysis is deliberately NOT required, pinned or
// vendored: this repository builds in a hermetic environment with no
// module proxy, so cmd/smallvet's framework (internal/analysis) re-creates
// the x/tools go/analysis API surface on the standard library alone and
// the module stays dependency-free. If the dependency ever becomes
// available, the analyzers port to the real framework by changing imports
// only. See DESIGN.md, "Static analysis".

go 1.22
