// Package repro_test is the benchmark harness: one testing.B benchmark
// per table and figure of the thesis's evaluation (regenerating the data
// through internal/experiments), plus ablation benches for the design
// choices DESIGN.md calls out. Key shape metrics are attached with
// b.ReportMetric so `go test -bench=.` doubles as a reproduction check.
package repro_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/benchprogs"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/heap"
	"repro/internal/lisp"
	"repro/internal/multilisp"
	"repro/internal/parsweep"
	"repro/internal/sexpr"
	"repro/internal/sim"
	"repro/internal/trace"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

// sharedRunner caches benchmark traces across benches (scale 1 keeps
// -bench=. fast; cmd/experiments defaults to scale 2).
func sharedRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		runner = experiments.NewRunner(experiments.Config{Scale: 1, Seeds: 8})
	})
	return runner
}

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	r := sharedRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 3: one bench per figure/table ---

func BenchmarkFig3_1(b *testing.B)      { benchExperiment(b, "fig3.1") }
func BenchmarkTable3_1(b *testing.B)    { benchExperiment(b, "table3.1") }
func BenchmarkFig3_3(b *testing.B)      { benchExperiment(b, "fig3.3") }
func BenchmarkFig3_4(b *testing.B)      { benchExperiment(b, "fig3.4") }
func BenchmarkFig3_5(b *testing.B)      { benchExperiment(b, "fig3.5") }
func BenchmarkFig3_6(b *testing.B)      { benchExperiment(b, "fig3.6") }
func BenchmarkFig3_7(b *testing.B)      { benchExperiment(b, "fig3.7") }
func BenchmarkTable3_2(b *testing.B)    { benchExperiment(b, "table3.2") }
func BenchmarkFig3_8to10(b *testing.B)  { benchExperiment(b, "fig3.8") }
func BenchmarkFig3_11to13(b *testing.B) { benchExperiment(b, "fig3.11") }

// --- Chapter 5 ---

func BenchmarkTable5_1(b *testing.B) { benchExperiment(b, "table5.1") }

// Fig 5.1 and Table 5.4 are the allocation-regression canaries for the
// simulator's pooled hot path: ReportAllocs keeps allocs/op visible so a
// reintroduced per-event allocation shows up in the bench history
// (baseline in BENCH_parsweep.json).
func BenchmarkFig5_1(b *testing.B) {
	b.ReportAllocs()
	benchExperiment(b, "fig5.1")
}
func BenchmarkFig5_2(b *testing.B)   { benchExperiment(b, "fig5.2") }
func BenchmarkFig5_3(b *testing.B)   { benchExperiment(b, "fig5.3") }
func BenchmarkTable5_2(b *testing.B) { benchExperiment(b, "table5.2") }
func BenchmarkTable5_3(b *testing.B) { benchExperiment(b, "table5.3") }
func BenchmarkTable5_4(b *testing.B) {
	b.ReportAllocs()
	benchExperiment(b, "table5.4")
}
func BenchmarkFig5_4(b *testing.B)   { benchExperiment(b, "fig5.4") }
func BenchmarkFig5_5(b *testing.B)   { benchExperiment(b, "fig5.5") }
func BenchmarkTable5_5(b *testing.B) { benchExperiment(b, "table5.5") }

// --- Chapter 4 timing model and Chapter 6 ---

func BenchmarkTimingModel(b *testing.B) { benchExperiment(b, "timing") }
func BenchmarkMultilisp(b *testing.B)   { benchExperiment(b, "multilisp") }
func BenchmarkParallelism(b *testing.B) { benchExperiment(b, "parallelism") }
func BenchmarkClarkStudy(b *testing.B)  { benchExperiment(b, "clark") }
func BenchmarkGCStudy(b *testing.B)     { benchExperiment(b, "gc") }
func BenchmarkDirectStudy(b *testing.B) { benchExperiment(b, "direct") }

// BenchmarkSweepSpeedup measures the parallel sweep engine against a
// single-worker run of the same multi-seed knee sweep (the Fig 5.2
// inner loop) and reports the wall-clock ratio as speedup_x. On a
// single-core host the ratio sits near 1; the engine targets ≥2x on
// four or more cores.
func BenchmarkSweepSpeedup(b *testing.B) {
	defer parsweep.SetWorkers(0)
	st := slangStream(b)
	const points = 16
	sweep := func() error {
		_, err := parsweep.Map(points, func(i int) (int, error) {
			res, err := sim.Run(st, sim.Params{TableSize: 1 << 16, Seed: int64(i)})
			if err != nil {
				return 0, err
			}
			return res.PeakLPT, nil
		})
		return err
	}
	var serialNS, parallelNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parsweep.SetWorkers(1)
		t0 := time.Now()
		if err := sweep(); err != nil {
			b.Fatal(err)
		}
		serialNS += time.Since(t0).Nanoseconds()
		parsweep.SetWorkers(0) // back to GOMAXPROCS
		t0 = time.Now()
		if err := sweep(); err != nil {
			b.Fatal(err)
		}
		parallelNS += time.Since(t0).Nanoseconds()
	}
	b.StopTimer()
	if parallelNS > 0 {
		b.ReportMetric(float64(serialNS)/float64(parallelNS), "speedup_x")
	}
	b.ReportMetric(float64(parsweep.Workers()), "workers")
}

// --- Ablation benches for the DESIGN.md design choices ---

func slangStream(b *testing.B) *trace.Stream {
	b.Helper()
	st, err := sharedRunner().Stream("slang")
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkAblationFreeDiscipline: free stack (SMALL) vs free queue for
// LPT entry reuse. The stack minimises how long lazily-retained children
// of freed entries occupy table space; the metric is average occupancy.
func BenchmarkAblationFreeDiscipline(b *testing.B) {
	st := slangStream(b)
	for _, cfg := range []struct {
		name string
		d    core.FreeDiscipline
	}{{"stack", core.FreeStack}, {"queue", core.FreeQueue}} {
		b.Run(cfg.name, func(b *testing.B) {
			var occ float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(st, sim.Params{TableSize: 512, Seed: 1, FreeList: cfg.d})
				if err != nil {
					b.Fatal(err)
				}
				occ = res.AvgLPT
			}
			b.ReportMetric(occ, "avg-occupancy")
		})
	}
}

// BenchmarkAblationLazyDecrement: lazy vs recursive child decrement
// (Table 5.2 Refops vs RecRefops).
func BenchmarkAblationLazyDecrement(b *testing.B) {
	st := slangStream(b)
	for _, cfg := range []struct {
		name string
		d    core.DecrementPolicy
	}{{"lazy", core.LazyDecrement}, {"recursive", core.RecursiveDecrement}} {
		b.Run(cfg.name, func(b *testing.B) {
			var refops float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(st, sim.Params{TableSize: 512, Seed: 1, Decrement: cfg.d})
				if err != nil {
					b.Fatal(err)
				}
				refops = float64(res.Machine.LPT.Refops)
			}
			b.ReportMetric(refops, "refops")
		})
	}
}

// BenchmarkAblationSplitCounts: EP-side stack reference counting versus
// sending every count update over the EP-LP bus (Table 5.3).
func BenchmarkAblationSplitCounts(b *testing.B) {
	st := slangStream(b)
	for _, cfg := range []struct {
		name  string
		split bool
	}{{"unsplit", false}, {"split", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(st, sim.Params{TableSize: 512, Seed: 1, SplitStackCounts: cfg.split})
				if err != nil {
					b.Fatal(err)
				}
				msgs = float64(res.Machine.EPLPMessages)
			}
			b.ReportMetric(msgs, "ep-lp-msgs")
		})
	}
}

// BenchmarkAblationCompression: Compress-One vs Compress-All under
// pressure (Fig 5.3).
func BenchmarkAblationCompression(b *testing.B) {
	st := slangStream(b)
	for _, cfg := range []struct {
		name string
		p    core.CompressionPolicy
	}{{"one", core.CompressOne}, {"all", core.CompressAll}} {
		b.Run(cfg.name, func(b *testing.B) {
			var occ float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(st, sim.Params{TableSize: 48, Seed: 1, Policy: cfg.p})
				if err != nil {
					b.Fatal(err)
				}
				occ = res.AvgLPT
			}
			b.ReportMetric(occ, "avg-occupancy")
		})
	}
}

// BenchmarkAblationBinding: deep vs shallow vs value-cached deep binding
// in the interpreter (§2.3.2), measured by environment probes on a real
// benchmark program.
func BenchmarkAblationBinding(b *testing.B) {
	bench, _ := benchprogs.ByName("plagen")
	src := bench.Gen(1)
	for _, cfg := range []struct {
		name string
		mk   func() lisp.Env
	}{
		{"deep", func() lisp.Env { return lisp.NewDeepEnv() }},
		{"shallow", func() lisp.Env { return lisp.NewShallowEnv() }},
		{"cached", func() lisp.Env { return lisp.NewCachedDeepEnv(16) }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var probes float64
			for i := 0; i < b.N; i++ {
				env := cfg.mk()
				in := lisp.New(lisp.WithEnv(env))
				if _, err := in.Run(src); err != nil {
					b.Fatal(err)
				}
				probes = float64(env.Stats().Probes)
			}
			b.ReportMetric(probes, "env-probes")
		})
	}
}

// BenchmarkAblationHeapRep: build + full traversal cost of the same list
// under the four §2.3.3 representations; metrics report the space used.
func BenchmarkAblationHeapRep(b *testing.B) {
	doc, err := sexpr.Parse("(a (b c (d e) f) g (h (i j k) l) m n (o p) q r s t)")
	if err != nil {
		b.Fatal(err)
	}
	var traverse func(r heap.Representation, w heap.Word)
	traverse = func(r heap.Representation, w heap.Word) {
		if w.Tag != heap.TagCell {
			return
		}
		car, err := r.Car(w)
		if err != nil {
			b.Fatal(err)
		}
		traverse(r, car)
		cdr, err := r.Cdr(w)
		if err != nil {
			b.Fatal(err)
		}
		traverse(r, cdr)
	}
	for _, mk := range []func() heap.Representation{
		func() heap.Representation { return heap.NewTwoPtr(4096) },
		func() heap.Representation { return heap.NewCdr2(8192) },
		func() heap.Representation { return heap.NewLinkedVec(8192, 8) },
		func() heap.Representation { return heap.NewCdar() },
		func() heap.Representation { return heap.NewOffsetCode(8192) },
		func() heap.Representation { return heap.NewBlast(2048, 8) },
	} {
		name := mk().Name()
		b.Run(name, func(b *testing.B) {
			var words float64
			for i := 0; i < b.N; i++ {
				r := mk()
				w, err := r.Build(doc)
				if err != nil {
					b.Fatal(err)
				}
				traverse(r, w)
				words = float64(r.Words())
			}
			b.ReportMetric(words, "words")
		})
	}
}

// BenchmarkAblationRefWeight: message cost of reference weighting versus
// naive distributed reference counting (one increment message per copy).
func BenchmarkAblationRefWeight(b *testing.B) {
	for _, mode := range []string{"weighting", "naive"} {
		b.Run(mode, func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				s := multilisp.NewSystem(4)
				root := s.Nodes[0].Cons(multilisp.AtomRef(sexpr.Int(1)), multilisp.NilRef)
				cur := root
				copies := make([]multilisp.Ref, 0, 128)
				for j := 0; j < 128; j++ {
					kept, cp, err := s.Nodes[1].Copy(cur)
					if err != nil {
						b.Fatal(err)
					}
					cur = kept
					copies = append(copies, cp)
				}
				for _, cp := range copies {
					s.Nodes[1].Release(cp)
				}
				s.Nodes[1].Release(cur)
				s.Quiesce()
				st := s.Stats()
				switch mode {
				case "weighting":
					msgs = float64(st.DecMessages)
				case "naive":
					// naive counting: every copy = 1 increment message,
					// every release = 1 decrement message, no combining.
					msgs = float64(st.LocalCopies + st.DecMessages + st.DecCombined)
				}
			}
			b.ReportMetric(msgs, "messages")
		})
	}
}

// --- SMALL machine micro-benchmarks ---

func BenchmarkMachineConsRelease(b *testing.B) {
	m := core.NewMachine(core.Config{LPTSize: 4096})
	a, err := m.ReadList(sexpr.List(sexpr.Symbol("x")), core.NilValue)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := m.Cons(a, core.NilValue)
		if err != nil {
			b.Fatal(err)
		}
		m.Release(v)
	}
}

func BenchmarkMachineCarHit(b *testing.B) {
	m := core.NewMachine(core.Config{LPTSize: 4096})
	l, err := m.ReadList(sexpr.List(sexpr.Symbol("x"), sexpr.Symbol("y")), core.NilValue)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Car(l); err != nil { // prime the split
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := m.Car(l)
		if err != nil {
			b.Fatal(err)
		}
		m.Release(v)
	}
}

func BenchmarkInterpreterFib(b *testing.B) {
	src := `
	(defun fib (n)
	  (cond ((lessp n 2) n)
	        (t (+ (fib (- n 1)) (fib (- n 2))))))
	(fib 15)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lisp.New().Run(src); err != nil {
			b.Fatal(err)
		}
	}
}
