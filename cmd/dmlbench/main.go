// Command dmlbench regenerates BENCH_dml.json: distributed Multilisp
// evaluation of every benchmark program over real SMCR workers (TCP
// loopback, binary verbs) at 1, 2, and 4 workers versus the single-node
// interpreter. Alongside wall-clock speedup it reports the message
// economics the weighted-reference scheme is designed around: protocol
// messages per remote cons and the combining-queue ratio (decrements
// enqueued per decrement frame actually sent). Weight-increment messages
// are asserted zero — the verb does not exist.
//
//	dmlbench -out BENCH_dml.json
//	dmlbench -scale 1 -benchtime 1x -reps 1 -out /dev/stdout   # CI smoke
//
// Wired to `make bench-dml`; `make verify` runs the 1-iteration smoke so
// the regeneration path cannot rot.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchprogs"
	"repro/internal/cluster"
	"repro/internal/dml"
	"repro/internal/lisp"
	"repro/internal/server"
)

const stepLimit = 200_000_000

// statsEvals is the length of the instrumented run that measures message
// economics: long enough that releases from consecutive evaluations share
// combining-queue flush windows, as a long-running coordinator's would.
const statsEvals = 32

// workerCounts is the cluster-size ladder each benchmark is measured at.
var workerCounts = []int{1, 2, 4}

type distStats struct {
	Iterations        int     `json:"iterations"`
	NsPerEval         int64   `json:"ns_per_eval"`
	SpeedupX          float64 `json:"speedup_x"`
	SpawnsPerEval     float64 `json:"spawns_per_eval"`
	MessagesPerCons   float64 `json:"messages_per_cons"`
	CombiningRatioX   float64 `json:"combining_ratio_x"`
	WeightIncMessages int64   `json:"weight_inc_messages"`
}

type benchReport struct {
	SerialNs int64                `json:"serial_ns_per_eval"`
	Workers  map[string]distStats `json:"workers"`
}

type summary struct {
	CombiningRatioX   float64 `json:"combining_ratio_x"`
	DecsEnqueued      int64   `json:"decs_enqueued"`
	DecFramesSent     int64   `json:"dec_frames_sent"`
	WeightIncMessages int64   `json:"weight_inc_messages"`
}

type report struct {
	Description string                 `json:"description"`
	Command     string                 `json:"command"`
	Host        hostInfo               `json:"host"`
	Scale       int                    `json:"scale"`
	Benchmarks  map[string]benchReport `json:"benchmarks"`
	Summary     summary                `json:"summary"`
}

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	Note   string `json:"note"`
}

// benchWorker is one real SMCR worker: a full smalld service behind the
// binary RPC listener on loopback TCP.
type benchWorker struct {
	addr string
	svc  *server.Server
	rpc  *cluster.RPCServer
}

func startWorker() (*benchWorker, error) {
	svc := server.New(server.Config{
		Workers:        runtime.NumCPU(),
		QueueDepth:     64,
		RequestTimeout: 30 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Shutdown()
		return nil, err
	}
	rpc := cluster.NewRPCServer(svc.Handler())
	go rpc.Serve(context.Background(), ln)
	return &benchWorker{addr: ln.Addr().String(), svc: svc, rpc: rpc}, nil
}

func (w *benchWorker) stop() {
	w.rpc.Close()
	w.svc.Shutdown()
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_dml.json", "output file")
	scale := flag.Int("scale", 1, "benchmark workload scale")
	benchtime := flag.String("benchtime", "300ms", "per-measurement time (or Nx for fixed iterations)")
	reps := flag.Int("reps", 3, "repetitions per measurement; the fastest is kept")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime: %v", err)
	}

	workers := make([]*benchWorker, workerCounts[len(workerCounts)-1])
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.stop()
			}
		}
	}()
	for i := range workers {
		w, err := startWorker()
		if err != nil {
			fatalf("starting worker: %v", err)
		}
		workers[i] = w
	}

	reports := make(map[string]benchReport)
	var sum summary
	for _, b := range benchprogs.All() {
		src := b.Gen(*scale)

		serialRes := measure(*reps, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				in := lisp.New(lisp.WithOutput(io.Discard), lisp.WithStepLimit(stepLimit))
				if _, err := in.Run(src); err != nil {
					bb.Fatal(err)
				}
			}
		})

		br := benchReport{SerialNs: serialRes.NsPerOp(), Workers: make(map[string]distStats)}
		for _, n := range workerCounts {
			ds, err := measureDistributed(workers[:n], src, serialRes.NsPerOp(), *reps)
			if err != nil {
				fatalf("%s at %d workers: %v", b.Name, n, err)
			}
			br.Workers[fmt.Sprint(n)] = ds.distStats
			sum.DecsEnqueued += ds.enqueued
			sum.DecFramesSent += ds.frames
			sum.WeightIncMessages += ds.WeightIncMessages
			fmt.Fprintf(os.Stderr, "benched %s @%dw: %.2fx vs serial, %.2f msgs/cons, %.2fx combining\n",
				b.Name, n, ds.SpeedupX, ds.MessagesPerCons, ds.CombiningRatioX)
		}
		reports[b.Name] = br
	}

	sum.CombiningRatioX = ratio(sum.DecsEnqueued, sum.DecFramesSent)
	if sum.WeightIncMessages != 0 {
		fatalf("weight-increment messages sent: %d (the scheme forbids them)", sum.WeightIncMessages)
	}
	if sum.DecFramesSent > 0 && sum.CombiningRatioX <= 1 {
		fatalf("combining ratio %.2f <= 1: the queues never coalesced", sum.CombiningRatioX)
	}

	rep := report{
		Description: "Distributed Multilisp futures over real SMCR workers (loopback TCP, binary future-spawn/future-touch/weight-dec verbs) vs the single-node interpreter, per benchmark at 1/2/4 workers. messages_per_cons counts every protocol message the coordinator sent (spawn + touch + decrement frames) per cons performed remotely on its behalf; combining_ratio_x is decrements enqueued per decrement frame that crossed a link (Fig 6.6's combining queues). weight_inc_messages is structural — no increment verb exists; copies split weight locally. The differential test in internal/experiments proves distributed values and output byte-identical to single-node, so any speedup is free. Regenerate with `make bench-dml`.",
		Command:     fmt.Sprintf("go run ./cmd/dmlbench -scale %d -benchtime %s -reps %d -out %s", *scale, *benchtime, *reps, *out),
		Host: hostInfo{
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			CPU:    cpuModel(),
			Cores:  runtime.NumCPU(),
			Note:   "benchmarks this small pay the per-future RPC round trips out of any parallel win, so speedup_x hovers near (or below) 1 at scale 1 — the contract here is the message economics: messages_per_cons stays flat as workers scale and combining_ratio_x stays above 1. slang and pearl spawn nothing (property-list reads are unshippable under the strict purity basis) and report zeros.",
		},
		Scale:      *scale,
		Benchmarks: reports,
		Summary:    sum,
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

type distResult struct {
	distStats
	enqueued, frames int64
}

// measureDistributed times fresh-evaluator runs of src over the given
// workers, then replays a fixed-length instrumented run on a fresh
// spawner to read off the message economics (the timing spawner's
// counters include a benchtime-dependent number of iterations, so the
// economics come from the controlled run instead).
func measureDistributed(workers []*benchWorker, src string, serialNs int64, reps int) (distResult, error) {
	links := make([]dml.Link, len(workers))
	for i, w := range workers {
		links[i] = cluster.NewStaticLink(w.addr, 10*time.Second)
	}
	sp := dml.NewSpawner(links...)
	timing := measure(reps, func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			ev := dml.NewEvaluator(sp, io.Discard, lisp.WithStepLimit(stepLimit))
			_, err := ev.Run(context.Background(), src, true)
			ev.Close()
			if err != nil {
				bb.Fatal(err)
			}
		}
	})
	sp.Close()

	// Instrumented pass: statsEvals back-to-back evaluations through one
	// spawner, drained to quiescence before reading the counters.
	links2 := make([]dml.Link, len(workers))
	for i, w := range workers {
		links2[i] = cluster.NewStaticLink(w.addr, 10*time.Second)
	}
	sp2 := dml.NewSpawner(links2...)
	var remoteConses int64
	for i := 0; i < statsEvals; i++ {
		ev := dml.NewEvaluator(sp2, io.Discard, lisp.WithStepLimit(stepLimit))
		_, err := ev.Run(context.Background(), src, true)
		remoteConses += ev.Stats().RemoteConses
		ev.Close()
		if err != nil {
			sp2.Close()
			return distResult{}, err
		}
	}
	st, err := drain(sp2)
	sp2.Close()
	for _, l := range links2 {
		l.(*cluster.StaticLink).Close()
	}
	for _, l := range links {
		l.(*cluster.StaticLink).Close()
	}
	if err != nil {
		return distResult{}, err
	}

	messages := st.Spawns + st.Touches + st.Combining.Frames
	return distResult{
		distStats: distStats{
			Iterations:        timing.N,
			NsPerEval:         timing.NsPerOp(),
			SpeedupX:          round2(float64(serialNs) / float64(timing.NsPerOp())),
			SpawnsPerEval:     round2(float64(st.Spawns) / statsEvals),
			MessagesPerCons:   round2(float64(messages) / float64(max64(remoteConses, 1))),
			CombiningRatioX:   ratio(st.Combining.Enqueued, st.Combining.Frames),
			WeightIncMessages: st.WeightIncMessages,
		},
		enqueued: st.Combining.Enqueued,
		frames:   st.Combining.Frames,
	}, nil
}

// drain flushes the combining queues until every reference's weight has
// returned to its worker, then returns the settled counters.
func drain(sp *dml.Spawner) (dml.SpawnerStats, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		sp.Flush()
		st := sp.Stats()
		if st.OutstandingWeight == 0 {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("outstanding weight %d never drained", st.OutstandingWeight)
		}
		time.Sleep(time.Millisecond)
	}
}

// measure runs f under testing.Benchmark reps times, garbage-collecting
// between runs, and keeps the fastest result.
func measure(reps int, f func(*testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		runtime.GC()
		r := testing.Benchmark(f)
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

// ratio divides enqueued decrements by frames sent, or 0 when no frame
// ever crossed a link (the no-spawn benchmarks).
func ratio(enqueued, frames int64) float64 {
	if frames == 0 {
		return 0
	}
	return round2(float64(enqueued) / float64(frames))
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// cpuModel reads the processor model from /proc/cpuinfo (best effort).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return "unknown"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dmlbench: "+format+"\n", args...)
	os.Exit(1)
}
