// Command tracegen runs the benchmark suite under the tracing interpreter
// and writes the list access trace files consumed by cmd/locality and
// cmd/smallsim.
//
//	tracegen -out traces/          # all five benchmarks at scale 2
//	tracegen -bench lyra -scale 4 -out traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/benchprogs"
	"repro/internal/trace"
)

func main() {
	out := flag.String("out", ".", "output directory")
	bench := flag.String("bench", "", "benchmark name (default: all)")
	scale := flag.Int("scale", 2, "workload scale")
	flag.Parse()

	var list []benchprogs.Benchmark
	if *bench == "" {
		list = benchprogs.All()
	} else {
		b, ok := benchprogs.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *bench)
			os.Exit(2)
		}
		list = []benchprogs.Benchmark{b}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	for _, b := range list {
		t, err := benchprogs.Trace(b, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s: %v\n", b.Name, err)
			os.Exit(1)
		}
		path := filepath.Join(*out, b.Name+".trace")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if err := trace.Write(f, t); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		s := trace.Summarize(t)
		fmt.Printf("%s: %d primitives, %d function calls, max depth %d -> %s\n",
			b.Name, s.Primitives, s.Functions, s.MaxDepth, path)
	}
}
