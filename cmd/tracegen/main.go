// Command tracegen runs the benchmark suite under the tracing interpreter
// and writes the list access trace files consumed by cmd/locality and
// cmd/smallsim.
//
//	tracegen -out traces/                  # all five benchmarks at scale 2
//	tracegen -bench lyra -scale 4 -out traces/
//	tracegen -format binary -out traces/   # compact .btrace files ("SMTB")
//	tracegen -format refs -out traces/     # preprocessed .refs streams ("SMRS")
//	tracegen -engine vm -out traces/       # generate on the bytecode VM
//	tracegen -format refs -noindex ...     # omit the SMTX index footer
//
// Binary and refs files carry an SMTX index footer by default: a
// per-block byte offset table that lets readers seek, slice, and plan
// shards without decoding every event. -noindex writes the pre-index
// format for compatibility testing; all readers accept both.
//
// The vm engine compiles each benchmark to SMALL stack-machine bytecode
// and runs it on internal/vm; its traces are byte-identical to the
// interpreter's (asserted by the differential test in internal/vm) and
// generate several times faster.
//
// Readers (smallsim, locality, smalld) sniff the leading magic bytes, so
// every format is accepted everywhere a trace file is; text remains the
// default for greppability. Per-benchmark encode stats (events, bytes,
// bytes/event) print on success; a failing benchmark is reported and
// skipped, and the exit status is non-zero if any benchmark failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/benchprogs"
	"repro/internal/trace"
)

// countingWriter tracks bytes written for the encode stats.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeOne traces one benchmark on the selected engine and encodes it in
// the requested format, closing (and on failure removing) the output
// file on every path.
func writeOne(dir string, b benchprogs.Benchmark, scale int, format, engine string, noIndex bool) error {
	var t *trace.Trace
	var err error
	if engine == "vm" {
		t, err = benchprogs.TraceVM(b, scale)
	} else {
		t, err = benchprogs.Trace(b, scale)
	}
	if err != nil {
		return err
	}
	ext := ".trace"
	switch format {
	case "binary":
		ext = ".btrace"
	case "refs":
		ext = ".refs"
	}
	path := filepath.Join(dir, b.Name+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := &countingWriter{w: f}
	switch {
	case format == "text":
		err = trace.Write(cw, t)
	case format == "binary" && noIndex:
		err = trace.WriteBinaryNoIndex(cw, t)
	case format == "binary":
		err = trace.WriteBinary(cw, t)
	case format == "refs" && noIndex:
		err = trace.WriteStreamNoIndex(cw, trace.Preprocess(t))
	case format == "refs":
		err = trace.WriteStream(cw, trace.Preprocess(t))
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("closing %s: %w", path, err)
	}
	s := trace.Summarize(t)
	events := len(t.Events)
	perEvent := 0.0
	if events > 0 {
		perEvent = float64(cw.n) / float64(events)
	}
	fmt.Printf("%s: %d primitives, %d function calls, max depth %d -> %s (%s: %d events, %d bytes, %.1f B/event)\n",
		b.Name, s.Primitives, s.Functions, s.MaxDepth, path, format, events, cw.n, perEvent)
	return nil
}

func main() {
	out := flag.String("out", ".", "output directory")
	bench := flag.String("bench", "", "benchmark name (default: all)")
	scale := flag.Int("scale", 2, "workload scale")
	format := flag.String("format", "text", `output format: "text", "binary" (compact varint), or "refs" (preprocessed stream)`)
	engine := flag.String("engine", "interp", `evaluation engine: "interp" (tree-walking) or "vm" (bytecode, faster, identical traces)`)
	noIndex := flag.Bool("noindex", false, `omit the SMTX index footer on binary/refs output (pre-index compatible files)`)
	flag.Parse()

	switch *format {
	case "text", "binary", "refs":
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q (want text, binary, or refs)\n", *format)
		os.Exit(2)
	}
	switch *engine {
	case "interp", "vm":
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown engine %q (want interp or vm)\n", *engine)
		os.Exit(2)
	}
	var list []benchprogs.Benchmark
	if *bench == "" {
		list = benchprogs.All()
	} else {
		b, ok := benchprogs.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *bench)
			os.Exit(2)
		}
		list = []benchprogs.Benchmark{b}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	exit := 0
	for _, b := range list {
		if err := writeOne(*out, b, *scale, *format, *engine, *noIndex); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %s: %v\n", b.Name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
