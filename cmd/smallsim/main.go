// Command smallsim runs the Chapter 5 trace-driven SMALL simulator on a
// trace file.
//
//	smallsim -table 2048 traces/lyra.trace
//	smallsim -table 256 -cache 256 -line 4 -split traces/slang.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	tableSize := flag.Int("table", 2048, "LPT entries")
	policy := flag.String("policy", "one", "pseudo overflow policy: one or all")
	decr := flag.String("decrement", "lazy", "child decrement: lazy or recursive")
	split := flag.Bool("split", false, "split stack reference counts (Table 5.3)")
	cacheEntries := flag.Int("cache", 0, "parallel data cache entries (0 = off)")
	line := flag.Int("line", 1, "cache line size in cells")
	seed := flag.Int64("seed", 1, "random seed")
	argProb := flag.Float64("argprob", 0.60, "P(argument of current function)")
	locProb := flag.Float64("locprob", 0.30, "P(local of current function)")
	bindProb := flag.Float64("bindprob", 0.01, "P(result bound to a variable)")
	readProb := flag.Float64("readprob", 0.01, "P(variable freshly read into)")
	timing := flag.Bool("timing", false, "run the Fig 4.10-4.13 timing model")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smallsim [flags] <trace file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallsim: %v\n", err)
		os.Exit(1)
	}
	// Any trace format is accepted: text, binary ("SMTB"), or a
	// preprocessed reference stream ("SMRS", which skips Preprocess).
	t, st, err := trace.ReadAuto(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallsim: %v\n", err)
		os.Exit(1)
	}
	if st == nil {
		st = trace.Preprocess(t)
	}
	p := sim.Params{
		TableSize: *tableSize,
		Seed:      *seed,
		ArgProb:   *argProb, LocProb: *locProb,
		BindProb: *bindProb, ReadProb: *readProb,
		SplitStackCounts: *split,
		CacheEntries:     *cacheEntries,
		CacheLineSize:    *line,
	}
	if *policy == "all" {
		p.Policy = core.CompressAll
	}
	if *decr == "recursive" {
		p.Decrement = core.RecursiveDecrement
	}
	if *timing {
		tp := core.DefaultTiming()
		p.Timing = &tp
	}
	res, err := sim.Run(st, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace %s: %d primitive events\n", st.Name, res.Events)
	fmt.Printf("LPT: peak %d / %d entries, avg occupancy %.1f\n",
		res.PeakLPT, *tableSize, res.AvgLPT)
	fmt.Printf("LPT: hits %d misses %d (%.2f%% hit rate)\n",
		res.LPTHits, res.LPTMisses, res.LPTHitRate())
	l := res.Machine.LPT
	fmt.Printf("LPT activity: refops %d gets %d frees %d\n", l.Refops, l.Gets, l.Frees)
	fmt.Printf("overflow: pseudo %d (compressed %d pairs), true %d, mode switches %d\n",
		l.PseudoOverflow, l.CompressedPairs, l.TrueOverflow, res.Machine.ModeSwitches)
	if *split {
		fmt.Printf("split counts: %d stack events -> %d EP-LP messages (max EP count %d)\n",
			res.Machine.StackRefEvents, res.Machine.EPLPMessages, res.Machine.MaxEPCount)
	}
	if *cacheEntries > 0 {
		fmt.Printf("cache (%d entries, line %d): hits %d misses %d (%.2f%% hit rate)\n",
			*cacheEntries, *line, res.CacheHits, res.CacheMisses, res.CacheHitRate())
		if res.LPTMisses > 0 {
			fmt.Printf("cache/LPT miss ratio: %.2f\n",
				float64(res.CacheMisses)/float64(res.LPTMisses))
		}
	}
	if *timing {
		ts := res.Timing
		fmt.Printf("timing: EP clock %d, LP busy %d, EP idle %d, serial %d, speedup %.2f\n",
			ts.EPClock, ts.LPBusy, ts.EPIdle, ts.Serial, ts.Speedup())
	}
}
