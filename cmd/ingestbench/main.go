// Command ingestbench regenerates BENCH_ingest.json: throughput
// baselines for the ingest layer. Two units per benchmark trace:
//
//   - push: bytes/sec through Staging.Push — the quota-bounded read,
//     FNV hash, and SMTB decode an upload pays on admission;
//   - replay at 1/2/4/8 shards: events/sec through PlanShards +
//     Replay with an in-process runner (SMRS encode, decode, fresh
//     machine per shard), i.e. the map-reduce path minus the network.
//
// The shard scaling ratio (8-shard over 1-shard events/sec) is the
// headline: it bounds what a cluster can gain from spreading one
// tenant's staged traces.
//
//	ingestbench -out BENCH_ingest.json
//	ingestbench -scale 1 -benchtime 1x -out /dev/stdout   # CI smoke
//
// Wired to `make bench-ingest`; `make verify` runs the 1-iteration
// smoke so the regeneration path cannot rot.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/benchprogs"
	"repro/internal/ingest"
	"repro/internal/sim"
	"repro/internal/trace"
)

type pushStats struct {
	Bytes       int64   `json:"bytes"`
	NsPerPush   int64   `json:"ns_per_push"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_push"`
}

type replayStats struct {
	Shards       int     `json:"shards"`
	NsPerRun     int64   `json:"ns_per_run"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// streamStats reports one streaming-ingest run over the indexed SMRS
// encoding: the latency split (first shard dispatched vs stream fully
// staged) and end-to-end throughput.
type streamStats struct {
	ShardBlocks  int     `json:"shard_blocks"`
	Bytes        int64   `json:"smrs_bytes"`
	FirstShardNs int64   `json:"first_shard_ns"`
	StagedNs     int64   `json:"staged_ns"`
	TotalNs      int64   `json:"total_ns"`
	MBPerSec     float64 `json:"e2e_mb_per_sec"`
}

type benchReport struct {
	Events    int           `json:"events"`
	Push      pushStats     `json:"push"`
	PlanNs    int64         `json:"plan_ns"`
	Replay    []replayStats `json:"replay"`
	Stream    streamStats   `json:"stream"`
	ScalingX  float64       `json:"shard_scaling_x"`
	PlanSize  int           `json:"plan_size_at_8"`
	SMTBBytes int64         `json:"smtb_bytes"`
}

type report struct {
	Description string                 `json:"description"`
	Command     string                 `json:"command"`
	Host        hostInfo               `json:"host"`
	Scale       int                    `json:"scale"`
	Benchmarks  map[string]benchReport `json:"benchmarks"`
}

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	Note   string `json:"note"`
}

var shardCounts = []int{1, 2, 4, 8}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_ingest.json", "output file")
	scale := flag.Int("scale", 2, "benchmark trace scale")
	benchtime := flag.String("benchtime", "300ms", "per-measurement time (or Nx for fixed iterations)")
	reps := flag.Int("reps", 3, "repetitions per measurement; the fastest is kept")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime: %v", err)
	}

	params := sim.Params{TableSize: 256}
	paramsJSON, err := json.Marshal(params)
	if err != nil {
		fatalf("marshal params: %v", err)
	}
	// The in-process runner mirrors smalld's: a request carrying a
	// zero-copy stream view replays it directly, skipping the
	// encode/decode round-trip; wire payloads decode first.
	runner := ingest.RunnerFunc(func(ctx context.Context, req *ingest.ShardRequest) (*sim.ShardStats, error) {
		st := req.Stream
		if st == nil {
			payload, err := req.ShardPayload()
			if err != nil {
				return nil, err
			}
			st, err = trace.ReadStream(bytes.NewReader(payload))
			if err != nil {
				return nil, err
			}
		}
		r, err := sim.RunCtx(ctx, st, params)
		if err != nil {
			return nil, err
		}
		s := sim.ShardOf(r)
		return &s, nil
	})

	reports := make(map[string]benchReport)
	for _, b := range benchprogs.All() {
		tr, err := benchprogs.Trace(b, *scale)
		if err != nil {
			fatalf("%s: trace: %v", b.Name, err)
		}
		var smtb bytes.Buffer
		if err := trace.WriteBinary(&smtb, tr); err != nil {
			fatalf("%s: encode: %v", b.Name, err)
		}
		upload := smtb.Bytes()
		st := trace.Preprocess(tr)
		segs := []ingest.Segment{ingest.NewSegment(st)}
		var smrs bytes.Buffer
		if err := trace.WriteStream(&smrs, st); err != nil {
			fatalf("%s: encode stream: %v", b.Name, err)
		}
		streamBytes := smrs.Bytes()

		pushRes := measure(*reps, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				s := ingest.NewStaging(ingest.Limits{})
				if _, err := s.Push("bench", bytes.NewReader(upload)); err != nil {
					bb.Fatal(err)
				}
			}
		})

		rep := benchReport{
			Events:    len(st.Refs),
			SMTBBytes: int64(len(upload)),
			Push: pushStats{
				Bytes:       int64(len(upload)),
				NsPerPush:   pushRes.NsPerOp(),
				MBPerSec:    round2(float64(len(upload)) / 1e6 / (float64(pushRes.NsPerOp()) / 1e9)),
				AllocsPerOp: pushRes.AllocsPerOp(),
			},
		}

		// Plan latency: a function of block counts alone, so it must not
		// scale with the event count of the segments.
		counts := []int{len(st.Refs)}
		planRes := measure(*reps, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				if p := ingest.PlanCounts(counts, 8); len(p) == 0 {
					bb.Fatal("empty plan")
				}
			}
		})
		rep.PlanNs = planRes.NsPerOp()

		for _, k := range shardCounts {
			plan := ingest.PlanSegments(segs, k)
			res := measure(*reps, func(bb *testing.B) {
				for i := 0; i < bb.N; i++ {
					if _, err := ingest.Replay(context.Background(), runner, segs, plan, paramsJSON); err != nil {
						bb.Fatal(err)
					}
				}
			})
			rep.Replay = append(rep.Replay, replayStats{
				Shards:       len(plan),
				NsPerRun:     res.NsPerOp(),
				EventsPerSec: eventsPerSec(len(st.Refs), res.NsPerOp()),
			})
			if k == 8 {
				rep.PlanSize = len(plan)
			}
		}
		if first, last := rep.Replay[0], rep.Replay[len(rep.Replay)-1]; first.EventsPerSec > 0 {
			rep.ScalingX = round2(last.EventsPerSec / first.EventsPerSec)
		}

		// Streaming ingest end-to-end over the indexed SMRS encoding:
		// keep the fastest run's latency split.
		var best *ingest.StreamRunResult
		for i := 0; i < *reps; i++ {
			r, err := ingest.StreamRun(context.Background(), runner, bytes.NewReader(streamBytes), 0, 4, paramsJSON)
			if err != nil {
				fatalf("%s: stream run: %v", b.Name, err)
			}
			if best == nil || r.TotalNs < best.TotalNs {
				best = r
			}
		}
		rep.Stream = streamStats{
			ShardBlocks:  4,
			Bytes:        int64(len(streamBytes)),
			FirstShardNs: best.FirstShardNs,
			StagedNs:     best.StagedNs,
			TotalNs:      best.TotalNs,
			MBPerSec:     round2(float64(len(streamBytes)) / 1e6 / (float64(best.TotalNs) / 1e9)),
		}

		reports[b.Name] = rep
		fmt.Printf("ingestbench: %-8s %7d events  push %6.1f MB/s  plan %5dns  replay x1 %10.0f ev/s  x%d %10.0f ev/s (%.2fx)  stream first/staged %.2fms/%.2fms\n",
			b.Name, rep.Events, rep.Push.MBPerSec, rep.PlanNs, rep.Replay[0].EventsPerSec,
			rep.PlanSize, rep.Replay[len(rep.Replay)-1].EventsPerSec, rep.ScalingX,
			float64(rep.Stream.FirstShardNs)/1e6, float64(rep.Stream.StagedNs)/1e6)
	}

	rep := report{
		Description: "ingest layer throughput: staging push (bounded read + decode), shard-plan latency (from block counts alone), sharded map-reduce replay at 1/2/4/8 shards with an in-process zero-copy runner, and streaming ingest end-to-end (first shard dispatched before staging completes)",
		Command:     fmt.Sprintf("go run ./cmd/ingestbench -scale %d -benchtime %s -out %s", *scale, *benchtime, *out),
		Host: hostInfo{
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			CPU:    cpuModel(),
			Cores:  runtime.NumCPU(),
			Note:   "in-process replay: shard scaling excludes RPC framing and network; plan size can sit below the requested shard count when a trace has fewer blocks",
		},
		Scale:      *scale,
		Benchmarks: reports,
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("ingestbench: wrote %s\n", *out)
}

func measure(reps int, f func(*testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		runtime.GC()
		r := testing.Benchmark(f)
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func eventsPerSec(events int, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return round2(float64(events) / (float64(nsPerOp) / 1e9))
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ingestbench: "+format+"\n", args...)
	os.Exit(1)
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}
