// Command experiments regenerates the thesis's tables and figures.
//
//	experiments               # run everything, in parallel
//	experiments -run fig5.1   # one experiment
//	experiments -list         # list experiment identifiers
//	experiments -scale 3      # larger benchmark traces
//	experiments -workers 2    # cap the sweep engine's worker count
//	experiments -cachedir .cache  # reuse traces/streams across runs
//	experiments -serial       # single-threaded (same output, slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/parsweep"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Int("scale", 2, "benchmark trace scale")
	seeds := flag.Int("seeds", 30, "seeds for multi-seed studies")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel sweep workers")
	serial := flag.Bool("serial", false, "run everything single-threaded")
	cachedir := flag.String("cachedir", "", "cache generated traces and preprocessed streams in this directory (reruns skip generation)")
	flag.Parse()

	if *serial {
		parsweep.SetWorkers(1)
	} else {
		parsweep.SetWorkers(*workers)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	r := experiments.NewRunner(experiments.Config{Scale: *scale, Seeds: *seeds, CacheDir: *cachedir})
	var toRun []experiments.Experiment
	if *run == "" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}
	// The experiments themselves form the outermost sweep; reports print
	// in the order requested regardless of completion order.
	reports, err := parsweep.Map(len(toRun), func(i int) (*experiments.Report, error) {
		rep, err := toRun[i].Run(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", toRun[i].ID, err)
		}
		return rep, nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for _, rep := range reports {
		fmt.Printf("== %s ==\n%s\n", rep.Title, rep.Text)
	}
}
