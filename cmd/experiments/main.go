// Command experiments regenerates the thesis's tables and figures.
//
//	experiments               # run everything
//	experiments -run fig5.1   # one experiment
//	experiments -list         # list experiment identifiers
//	experiments -scale 3      # larger benchmark traces
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Int("scale", 2, "benchmark trace scale")
	seeds := flag.Int("seeds", 30, "seeds for multi-seed studies")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	r := experiments.NewRunner(experiments.Config{Scale: *scale, Seeds: *seeds})
	var toRun []experiments.Experiment
	if *run == "" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (try -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}
	for _, e := range toRun {
		rep, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n%s\n", rep.Title, rep.Text)
	}
}
