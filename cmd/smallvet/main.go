// Command smallvet is the SMALL codebase's project-specific static
// analysis suite: a multichecker over five analyzers that enforce the
// invariants the compiler cannot see — complete pooled-object resets,
// interned-opcode dispatch, cancellation polling, `// guarded by`
// mutex discipline, and clamped decoder allocations.
//
// Usage:
//
//	smallvet [-json] [-dir root] [packages]
//
// Packages default to ./... relative to -dir (default "."). Exit code
// 1 means findings were reported, 2 means the analysis itself failed.
// With -json, diagnostics are emitted as a JSON array of
// {file, line, analyzer, message} objects for CI annotation scripts.
//
// Findings are suppressed per line with `// smallvet:ignore [names]`
// (trailing on the offending line, or alone on the line above).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/decodelimit"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/opdispatch"
	"repro/internal/analysis/resetzero"
)

// Analyzers is the smallvet suite, in stable reporting order.
var Analyzers = []*analysis.Analyzer{
	ctxloop.Analyzer,
	decodelimit.Analyzer,
	lockguard.Analyzer,
	opdispatch.Analyzer,
	resetzero.Analyzer,
}

// jsonDiagnostic is the -json wire shape (a stable contract for CI).
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (file, line, analyzer, message)")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Parse()

	diags, err := check(*dir, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "smallvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// check loads the patterns and runs the full suite, returning sorted
// diagnostics with paths relative to dir.
func check(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := analysis.Load(abs, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, Analyzers, abs)
}
