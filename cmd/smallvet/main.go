// Command smallvet is the SMALL codebase's project-specific static
// analysis suite: a multichecker over ten analyzers that enforce the
// invariants the compiler cannot see — complete pooled-object resets,
// interned-opcode dispatch, cancellation polling, `// guarded by`
// mutex discipline, clamped decoder allocations, and the
// flow-sensitive family built on internal/analysis/cfg: resources
// closed on every path, errors never dropped, goroutines bounded,
// WaitGroup balance, and defers kept out of loops.
//
// Usage:
//
//	smallvet [-json] [-dir root] [packages]
//
// Packages default to ./... relative to -dir (default "."). Exit code
// 1 means findings were reported, 2 means the analysis itself failed.
// With -json, output is a single object: a "findings" array of
// {file, line, col, end_line, end_col, analyzer, message} plus a
// "summary" block counting findings per analyzer — so CI can diff
// regressions across runs without parsing messages.
//
// Findings are suppressed per line with `// smallvet:ignore [names]`
// (trailing on the offending line, or alone on the line above).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/closepath"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/decodelimit"
	"repro/internal/analysis/deferloop"
	"repro/internal/analysis/errdrop"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/opdispatch"
	"repro/internal/analysis/resetzero"
	"repro/internal/analysis/waitgroup"
)

// Analyzers is the smallvet suite, in stable reporting order.
var Analyzers = []*analysis.Analyzer{
	closepath.Analyzer,
	ctxloop.Analyzer,
	decodelimit.Analyzer,
	deferloop.Analyzer,
	errdrop.Analyzer,
	goroleak.Analyzer,
	lockguard.Analyzer,
	opdispatch.Analyzer,
	resetzero.Analyzer,
	waitgroup.Analyzer,
}

// jsonDiagnostic is one finding in the -json wire shape (a stable
// contract for CI). end_line/end_col close the source range when the
// analyzer reported one; otherwise they repeat line/col.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	EndLine  int    `json:"end_line"`
	EndCol   int    `json:"end_col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json top-level object.
type jsonReport struct {
	Findings []jsonDiagnostic `json:"findings"`
	// Summary counts findings per analyzer (keys sort on encode), the
	// number CI diffs across PRs.
	Summary map[string]int `json:"summary"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and per-analyzer summary as JSON")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Parse()

	diags, err := check(*dir, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallvet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		report := jsonReport{
			Findings: make([]jsonDiagnostic, 0, len(diags)),
			Summary:  make(map[string]int),
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				EndLine:  d.EndPosition.Line,
				EndCol:   d.EndPosition.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			report.Summary[d.Analyzer]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "smallvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// check loads the patterns and runs the full suite, returning sorted
// diagnostics with paths relative to dir.
func check(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := analysis.Load(abs, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(pkgs, Analyzers, abs)
}
