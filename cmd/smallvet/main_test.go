package main

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
)

// TestRepoClean runs the full suite over the repository — the same
// check `make lint` performs — and requires zero findings, so any
// invariant regression fails `go test` too.
func TestRepoClean(t *testing.T) {
	diags, err := check("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestDeterministic verifies smallvet's contract for CI: two
// independent loads of the same tree produce byte-identical, sorted
// diagnostics.
func TestDeterministic(t *testing.T) {
	run := func() []analysis.Diagnostic {
		diags, err := check("../..", []string{"./..."})
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		return diags
	}
	first := run()
	second := run()

	render := func(ds []analysis.Diagnostic) []string {
		out := make([]string, len(ds))
		for i, d := range ds {
			out[i] = d.String()
		}
		return out
	}
	if !reflect.DeepEqual(render(first), render(second)) {
		t.Errorf("two runs diverged:\nrun 1: %q\nrun 2: %q", render(first), render(second))
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Position.Filename > b.Position.Filename ||
			(a.Position.Filename == b.Position.Filename && a.Position.Line > b.Position.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
