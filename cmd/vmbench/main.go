// Command vmbench regenerates BENCH_vm.json: per-eval throughput and
// allocation counts of the tree-walking interpreter versus the unboxed
// bytecode VM on every benchmark program, plus trace-generation
// throughput for both engines. The per-eval unit is "evaluate the whole
// benchmark from a clean context": a fresh interpreter over pre-parsed
// forms on one side, a pooled machine+VM pair recycled with Reset over
// a precompiled program on the other — the steady-state paths tracegen
// and the smalld vm backend actually run.
//
//	vmbench -out BENCH_vm.json
//	vmbench -scale 1 -benchtime 1x -out /dev/stdout   # CI smoke
//
// Wired to `make bench-vm`; `make verify` runs the 1-iteration smoke so
// the regeneration path cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/benchprogs"
	"repro/internal/core"
	"repro/internal/lisp"
	"repro/internal/sexpr"
	"repro/internal/vm"
)

const stepLimit = 200_000_000

type engineStats struct {
	Iterations  int   `json:"iterations"`
	NsPerEval   int64 `json:"ns_per_eval"`
	AllocsPerOp int64 `json:"allocs_per_eval"`
}

type traceStats struct {
	Events       int     `json:"events"`
	NsPerTrace   int64   `json:"ns_per_trace"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type benchReport struct {
	Interp       engineStats `json:"interp"`
	VM           engineStats `json:"vm"`
	SpeedupX     float64     `json:"speedup_x"`
	AllocsRatioX float64     `json:"allocs_ratio_x"`
	CompileNs    int64       `json:"vm_compile_ns"`
	InterpTrace  traceStats  `json:"interp_trace"`
	VMTrace      traceStats  `json:"vm_trace"`
	TraceSpeedX  float64     `json:"trace_speedup_x"`
}

type report struct {
	Description string                 `json:"description"`
	Command     string                 `json:"command"`
	Host        hostInfo               `json:"host"`
	Scale       int                    `json:"scale"`
	Benchmarks  map[string]benchReport `json:"benchmarks"`
	Ratios      map[string]float64     `json:"ratios"`
}

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	Note   string `json:"note"`
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_vm.json", "output file")
	scale := flag.Int("scale", 1, "benchmark workload scale")
	benchtime := flag.String("benchtime", "300ms", "per-measurement time (or Nx for fixed iterations)")
	reps := flag.Int("reps", 3, "repetitions per measurement; the fastest is kept")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime: %v", err)
	}

	reports := make(map[string]benchReport)
	var sumInterpNs, sumVMNs, sumInterpAllocs, sumVMAllocs int64
	var sumInterpTraceNs, sumVMTraceNs int64
	for _, b := range benchprogs.All() {
		src := b.Gen(*scale)
		forms, err := sexpr.ParseAll(src)
		if err != nil {
			fatalf("%s: parse: %v", b.Name, err)
		}
		compileRes := measure(*reps, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				if _, err := vm.CompileForms(forms); err != nil {
					bb.Fatal(err)
				}
			}
		})
		prog, err := vm.CompileForms(forms)
		if err != nil {
			fatalf("%s: compile: %v", b.Name, err)
		}

		interpRes := measure(*reps, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				in := lisp.New(lisp.WithStepLimit(stepLimit))
				for _, f := range forms {
					if _, err := in.Eval(f); err != nil {
						bb.Fatal(err)
					}
				}
			}
		})

		cfg, machine, err := sizeMachine(prog)
		if err != nil {
			fatalf("%s: sizing machine: %v", b.Name, err)
		}
		pooled := vm.New(prog, vm.WithMachine(machine), vm.WithStepLimit(stepLimit))
		vmRes := measure(*reps, func(bb *testing.B) {
			bb.ReportAllocs()
			for i := 0; i < bb.N; i++ {
				machine.Reset(cfg)
				pooled.Reset(prog, machine)
				if _, err := pooled.Run(); err != nil {
					bb.Fatal(err)
				}
			}
		})

		var events int
		interpTraceRes := measure(*reps, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				t, err := benchprogs.Trace(b, *scale)
				if err != nil {
					bb.Fatal(err)
				}
				events = len(t.Events)
			}
		})
		var vmEvents int
		vmTraceRes := measure(*reps, func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				col := lisp.NewCollector(b.Name)
				machine.Reset(cfg)
				pooled.Reset(prog, machine)
				pooled.SetTrace(col)
				_, err := pooled.Run()
				pooled.SetTrace(nil)
				if err != nil {
					bb.Fatal(err)
				}
				vmEvents = len(col.T.Events)
			}
		})
		if events != vmEvents {
			fatalf("%s: engines disagree on event count: %d vs %d", b.Name, events, vmEvents)
		}

		r := benchReport{
			Interp: engineStats{interpRes.N, interpRes.NsPerOp(), interpRes.AllocsPerOp()},
			VM:     engineStats{vmRes.N, vmRes.NsPerOp(), vmRes.AllocsPerOp()},
			SpeedupX: round2(float64(interpRes.NsPerOp()) /
				float64(vmRes.NsPerOp())),
			AllocsRatioX: round2(float64(interpRes.AllocsPerOp()) /
				float64(max64(vmRes.AllocsPerOp(), 1))),
			CompileNs:   compileRes.NsPerOp(),
			InterpTrace: traceStats{events, interpTraceRes.NsPerOp(), eventsPerSec(events, interpTraceRes.NsPerOp())},
			VMTrace:     traceStats{vmEvents, vmTraceRes.NsPerOp(), eventsPerSec(vmEvents, vmTraceRes.NsPerOp())},
			TraceSpeedX: round2(float64(interpTraceRes.NsPerOp()) / float64(vmTraceRes.NsPerOp())),
		}
		reports[b.Name] = r
		sumInterpNs += interpRes.NsPerOp()
		sumVMNs += vmRes.NsPerOp()
		sumInterpAllocs += interpRes.AllocsPerOp()
		sumVMAllocs += vmRes.AllocsPerOp()
		sumInterpTraceNs += interpTraceRes.NsPerOp()
		sumVMTraceNs += vmTraceRes.NsPerOp()
		fmt.Fprintf(os.Stderr, "benched %s: %.1fx faster, %.1fx fewer allocs\n",
			b.Name, r.SpeedupX, r.AllocsRatioX)
	}

	ratios := map[string]float64{
		"eval_speedup_x":      round2(float64(sumInterpNs) / float64(sumVMNs)),
		"eval_allocs_ratio_x": round2(float64(sumInterpAllocs) / float64(max64(sumVMAllocs, 1))),
		"trace_gen_speedup_x": round2(float64(sumInterpTraceNs) / float64(sumVMTraceNs)),
	}

	rep := report{
		Description: "Interpreter vs unboxed bytecode VM on the benchprogs suite: per-eval wall time and Go allocation counts (fresh interpreter over pre-parsed forms vs pooled Reset machine+VM over a precompiled program), and full trace-generation time for both engines. The differential test in internal/vm proves the two engines' outputs and trace streams byte-identical, so the speedup is free. Regenerate with `make bench-vm`.",
		Command:     fmt.Sprintf("go run ./cmd/vmbench -scale %d -benchtime %s -reps %d -out %s", *scale, *benchtime, *reps, *out),
		Host: hostInfo{
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			CPU:    cpuModel(),
			Cores:  runtime.NumCPU(),
			Note:   "ns_per_eval is noisy on shared hardware; the speedup and alloc ratios are the contract. vm_compile_ns is the one-time bytecode compilation cost a session pays per eval batch, excluded from ns_per_eval (both engines' units also exclude parsing).",
		},
		Scale:      *scale,
		Benchmarks: reports,
		Ratios:     ratios,
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// sizeMachine finds the smallest power-of-two machine that runs prog
// without LPT overflow or heap exhaustion, like a deployment sized to
// its workload. Machine.Reset clears the LPT and rethreads every heap
// cell, so a machine orders of magnitude larger than the program needs
// would bill a fixed multi-hundred-microsecond reset tax to each eval
// and bury the short benchmarks' real cost.
func sizeMachine(prog *vm.Program) (core.Config, *core.Machine, error) {
	cfg := core.Config{LPTSize: 1 << 8, HeapCells: 1 << 12}
	for {
		machine := core.NewMachine(cfg)
		probe := vm.New(prog, vm.WithMachine(machine), vm.WithStepLimit(stepLimit))
		_, err := probe.Run()
		switch {
		// An overflowed LPT leaks overflow-mode conses into the heap, so
		// grow the table before concluding the heap itself is too small.
		case err != nil && machine.OverflowMode() && cfg.LPTSize < 1<<20:
			cfg.LPTSize *= 2
		case err != nil && cfg.HeapCells < 1<<20:
			cfg.HeapCells *= 2
		case err != nil:
			return cfg, nil, err
		case machine.OverflowMode() && cfg.LPTSize < 1<<20:
			cfg.LPTSize *= 2
		default:
			// Leave headroom above the observed peak: a table sized right
			// at the high-water mark runs near 100% occupancy and spends
			// its time in pseudo-overflow compression instead of work.
			for cfg.LPTSize < 1<<20 && cfg.LPTSize < 4*machine.PeakInUse() {
				cfg.LPTSize *= 2
			}
			if cfg.HeapCells < 1<<20 {
				cfg.HeapCells *= 2
			}
			machine.Reset(cfg)
			return cfg, machine, nil
		}
	}
}

// measure runs f under testing.Benchmark reps times, garbage-collecting
// between runs, and keeps the fastest result. A single 300ms measurement
// on shared hardware swings by 2-3x with GC timing and scheduling; the
// minimum is the reproducible number.
func measure(reps int, f func(*testing.B)) testing.BenchmarkResult {
	var best testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		runtime.GC()
		r := testing.Benchmark(f)
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	return best
}

func eventsPerSec(events int, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return round2(float64(events) / (float64(nsPerOp) / 1e9))
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// cpuModel reads the processor model from /proc/cpuinfo (best effort).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return "unknown"
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vmbench: "+format+"\n", args...)
	os.Exit(1)
}
