// Command tracebench regenerates BENCH_trace.json: on-disk sizes of
// the text, binary, and reference-stream trace encodings for every
// benchmark at the experiments' default scale, codec speed and
// allocation benchmarks, and the cold-vs-warm timing of the
// experiments' disk cache.
//
//	tracebench -out BENCH_trace.json
//	tracebench -scale 3 -benchtime 1s -out /dev/stdout
//
// Wired to `make bench-trace`. Benchmarks run through
// testing.Benchmark so the numbers match `go test -bench` without
// parsing its text output.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchprogs"
	"repro/internal/experiments"
	"repro/internal/trace"
)

type benchEntry struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type sizeEntry struct {
	Events          int     `json:"events"`
	TextBytes       int     `json:"text_bytes"`
	BinaryBytes     int     `json:"binary_bytes"`
	RefsBytes       int     `json:"refs_bytes"`
	TextOverBinaryX float64 `json:"text_over_binary_x"`
	TextOverRefsX   float64 `json:"text_over_refs_x"`
}

type report struct {
	Description string                `json:"description"`
	Command     string                `json:"command"`
	Host        hostInfo              `json:"host"`
	Scale       int                   `json:"scale"`
	Sizes       map[string]sizeEntry  `json:"sizes"`
	Benchmarks  map[string]benchEntry `json:"benchmarks"`
	Ratios      map[string]float64    `json:"ratios"`
	Cache       cacheTiming           `json:"cache"`
}

type hostInfo struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
	Cores  int    `json:"cores"`
	Note   string `json:"note"`
}

type cacheTiming struct {
	ColdNs   int64   `json:"cold_ns"`
	WarmNs   int64   `json:"warm_ns"`
	SpeedupX float64 `json:"speedup_x"`
}

// forms holds one benchmark's trace with all three on-disk encodings.
type forms struct {
	t    *trace.Trace
	text []byte
	bin  []byte
	refs []byte
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_trace.json", "output file")
	scale := flag.Int("scale", 2, "benchmark trace scale (matches the experiments' default)")
	benchtime := flag.String("benchtime", "300ms", "per-benchmark measuring time")
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime: %v", err)
	}

	r := experiments.NewRunner(experiments.Config{Scale: *scale, Seeds: 5})
	sizes := make(map[string]sizeEntry)
	benches := make(map[string]benchEntry)
	byName := make(map[string]forms)
	var total sizeEntry
	for _, b := range benchprogs.All() {
		f, err := encodeAll(r, b.Name)
		if err != nil {
			fatalf("%s: %v", b.Name, err)
		}
		byName[b.Name] = f
		e := sizeEntry{
			Events:          len(f.t.Events),
			TextBytes:       len(f.text),
			BinaryBytes:     len(f.bin),
			RefsBytes:       len(f.refs),
			TextOverBinaryX: round2(float64(len(f.text)) / float64(len(f.bin))),
			TextOverRefsX:   round2(float64(len(f.text)) / float64(len(f.refs))),
		}
		sizes[b.Name] = e
		total.Events += e.Events
		total.TextBytes += e.TextBytes
		total.BinaryBytes += e.BinaryBytes
		total.RefsBytes += e.RefsBytes
	}
	total.TextOverBinaryX = round2(float64(total.TextBytes) / float64(total.BinaryBytes))
	total.TextOverRefsX = round2(float64(total.TextBytes) / float64(total.RefsBytes))
	sizes["total"] = total

	// Codec benchmarks per benchmark trace; the aggregate ratios below
	// come from the summed per-op times so large traces dominate, the
	// same weighting a full experiments run sees.
	var sums = map[string]int64{}
	var allocSums = map[string]int64{}
	for _, b := range benchprogs.All() {
		f := byName[b.Name]
		for _, c := range []struct {
			kind string
			size int
			fn   func(b *testing.B)
		}{
			{"EncodeText", len(f.text), func(bb *testing.B) { benchEncodeText(bb, f.t) }},
			{"EncodeBinary", len(f.bin), func(bb *testing.B) { benchEncodeBinary(bb, f.t) }},
			{"DecodeText", len(f.text), func(bb *testing.B) { benchDecodeText(bb, f.text) }},
			{"DecodeBinary", len(f.bin), func(bb *testing.B) { benchDecodeBinary(bb, f.bin) }},
			{"DecodeStream", len(f.refs), func(bb *testing.B) { benchDecodeStream(bb, f.refs) }},
			{"DecodeStreaming", len(f.bin), func(bb *testing.B) { benchDecodeStreaming(bb, f.bin) }},
		} {
			res := testing.Benchmark(c.fn)
			benches[c.kind+"/"+b.Name] = entry(res, c.size)
			sums[c.kind] += res.NsPerOp()
			allocSums[c.kind] += res.AllocsPerOp()
		}
		fmt.Fprintf(os.Stderr, "benched %s\n", b.Name)
	}

	ratios := map[string]float64{
		"size_text_over_binary_x":      total.TextOverBinaryX,
		"size_text_over_refs_x":        total.TextOverRefsX,
		"decode_text_over_binary_x":    round2(float64(sums["DecodeText"]) / float64(sums["DecodeBinary"])),
		"decode_text_over_streaming_x": round2(float64(sums["DecodeText"]) / float64(sums["DecodeStreaming"])),
		"decode_text_over_refs_x":      round2(float64(sums["DecodeText"]) / float64(sums["DecodeStream"])),
		"allocs_text_over_binary_x":    round2(float64(allocSums["DecodeText"]) / float64(allocSums["DecodeBinary"])),
	}

	cache, err := timeCache(*scale)
	if err != nil {
		fatalf("cache timing: %v", err)
	}

	rep := report{
		Description: "Baselines for the binary trace pipeline: on-disk size of the text / binary (.btrace) / reference-stream (.refs) encodings per benchmark, codec throughput and allocations, and the experiments disk cache cold-vs-warm load time. Regenerate with `make bench-trace`; compare against a fresh run with `scripts/bench_compare.sh`.",
		Command:     fmt.Sprintf("go run ./cmd/tracebench -scale %d -benchtime %s -out %s", *scale, *benchtime, *out),
		Host: hostInfo{
			GOOS:   runtime.GOOS,
			GOARCH: runtime.GOARCH,
			CPU:    cpuModel(),
			Cores:  runtime.NumCPU(),
			Note:   "Single-core container, so ns_per_op is noisy (~10-20% run to run); the ratios are the contract. pearl and slang are the small-trace outliers: their op/string tables amortise over fewer events, so their per-benchmark size ratios sit below the total. DecodeStreaming walks every event through Decoder.Next without materialising a Trace; DecodeStream loads a preprocessed .refs file, skipping Preprocess entirely.",
		},
		Scale:      *scale,
		Sizes:      sizes,
		Benchmarks: benches,
		Ratios:     ratios,
		Cache:      cache,
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func encodeAll(r *experiments.Runner, name string) (forms, error) {
	t, err := r.Trace(name)
	if err != nil {
		return forms{}, err
	}
	var text, bin, refs bytes.Buffer
	if err := trace.Write(&text, t); err != nil {
		return forms{}, err
	}
	if err := trace.WriteBinary(&bin, t); err != nil {
		return forms{}, err
	}
	if err := trace.WriteStream(&refs, trace.Preprocess(t)); err != nil {
		return forms{}, err
	}
	return forms{t: t, text: text.Bytes(), bin: bin.Bytes(), refs: refs.Bytes()}, nil
}

func entry(r testing.BenchmarkResult, size int) benchEntry {
	mbs := 0.0
	if s := r.T.Seconds(); s > 0 {
		mbs = float64(size) * float64(r.N) / s / 1e6
	}
	return benchEntry{
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		MBPerS:      round2(mbs),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// timeCache measures materialising all five reference streams with an
// empty disk cache (generate + preprocess + write) versus a fresh
// runner over the now-populated cache (read .refs, skip both).
func timeCache(scale int) (cacheTiming, error) {
	dir, err := os.MkdirTemp("", "tracebench-cache-")
	if err != nil {
		return cacheTiming{}, err
	}
	defer os.RemoveAll(dir)
	cfg := experiments.Config{Scale: scale, Seeds: 5, CacheDir: dir}
	run := func() (time.Duration, error) {
		r := experiments.NewRunner(cfg)
		start := time.Now()
		for _, b := range benchprogs.All() {
			if _, err := r.Stream(b.Name); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	cold, err := run()
	if err != nil {
		return cacheTiming{}, err
	}
	warm, err := run()
	if err != nil {
		return cacheTiming{}, err
	}
	return cacheTiming{
		ColdNs:   cold.Nanoseconds(),
		WarmNs:   warm.Nanoseconds(),
		SpeedupX: round2(float64(cold.Nanoseconds()) / float64(warm.Nanoseconds())),
	}, nil
}

func benchEncodeText(b *testing.B, t *trace.Trace) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := trace.Write(io.Discard, t); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEncodeBinary(b *testing.B, t *trace.Trace) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteBinary(io.Discard, t); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeText(b *testing.B, text []byte) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeBinary(b *testing.B, bin []byte) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadBinary(bytes.NewReader(bin)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeStream(b *testing.B, refs []byte) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadStream(bytes.NewReader(refs)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeStreaming(b *testing.B, bin []byte) {
	b.ReportAllocs()
	var ev trace.Event
	for i := 0; i < b.N; i++ {
		d, err := trace.NewDecoder(bytes.NewReader(bin))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if err := d.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func round2(v float64) float64 {
	return math.Round(v*100) / 100
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracebench: "+format+"\n", args...)
	os.Exit(1)
}
