// Command smalld serves the SMALL machine over HTTP: stateful Lisp
// sessions (plain interpreter or direct execution on a core.Machine) and
// stateless Chapter-5 simulation/experiment jobs, with a bounded
// admission queue, explicit backpressure, and Prometheus metrics.
//
//	smalld                      # listen on :8344
//	smalld -addr 127.0.0.1:0    # random port (printed on stdout)
//	smalld -queue 16 -workers 4 # tighter admission + execution bounds
//
// A quick conversation:
//
//	curl -s localhost:8344/v1/sessions -d '{"backend":"small"}'
//	curl -s localhost:8344/v1/sessions/s1/eval -d '{"expr":"(car (quote (a b)))"}'
//	curl -s localhost:8344/v1/sim -d '{"trace":"slang","point":{"table_size":256}}'
//	curl -s localhost:8344/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/parsweep"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address (host:0 picks a random port)")
	queueDepth := flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
	workers := flag.Int("workers", 0, "execution workers (default GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request execution deadline")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "idle session expiry")
	maxSessions := flag.Int("max-sessions", 1024, "live session ceiling")
	sweepWorkers := flag.Int("sweep-workers", 0, "parsweep helper budget (default GOMAXPROCS)")
	flag.Parse()

	if *sweepWorkers > 0 {
		parsweep.SetWorkers(*sweepWorkers)
	}

	svc := server.New(server.Config{
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		RequestTimeout: *timeout,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}
	// Print the resolved address first so scripts using -addr :0 can
	// discover the port.
	fmt.Printf("smalld: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		fmt.Println("smalld: draining")
		// Stop accepting, let in-flight handlers finish, then drain the
		// worker queue.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "smalld: shutdown: %v\n", err)
		}
		svc.Shutdown()
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("smalld: stopped")
}
