// Command smalld serves the SMALL machine over HTTP: stateful Lisp
// sessions (plain interpreter or direct execution on a core.Machine) and
// stateless Chapter-5 simulation/experiment jobs, with a bounded
// admission queue, explicit backpressure, and Prometheus metrics.
//
// One binary, three roles:
//
//	smalld                                    # standalone HTTP service on :8344
//	smalld -role worker -rpc-addr :8350       # HTTP + binary RPC for a gateway
//	smalld -role gateway -peers :8350,:8351   # routes HTTP traffic to workers
//
// A gateway shards session traffic across its workers by rendezvous
// hashing over session IDs (sticky: one session, one worker) and spreads
// stateless sim/experiment jobs least-loaded with bounded retries and
// optional hedging.
//
//	smalld                      # listen on :8344
//	smalld -addr 127.0.0.1:0    # random port (printed on stdout)
//	smalld -queue 16 -workers 4 # tighter admission + execution bounds
//
// A quick conversation:
//
//	curl -s localhost:8344/v1/sessions -d '{"backend":"small"}'
//	curl -s localhost:8344/v1/sessions/s1/eval -d '{"expr":"(car (quote (a b)))"}'
//	curl -s localhost:8344/v1/sim -d '{"trace":"slang","point":{"table_size":256}}'
//	curl -s localhost:8344/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/parsweep"
	"repro/internal/server"
)

func main() {
	role := flag.String("role", "standalone", "standalone | worker | gateway")
	addr := flag.String("addr", ":8344", "HTTP listen address (host:0 picks a random port)")
	rpcAddr := flag.String("rpc-addr", ":8350", "binary RPC listen address (worker role)")
	peers := flag.String("peers", "", "comma-separated worker RPC addresses (gateway role)")
	queueDepth := flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
	workers := flag.Int("workers", 0, "execution workers (default GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request execution deadline")
	sessionTTL := flag.Duration("session-ttl", 10*time.Minute, "idle session expiry")
	maxSessions := flag.Int("max-sessions", 1024, "live session ceiling")
	sweepWorkers := flag.Int("sweep-workers", 0, "parsweep helper budget (default GOMAXPROCS)")
	retries := flag.Int("retries", 2, "gateway retry budget for stateless jobs")
	hedge := flag.Duration("hedge", 0, "gateway hedge delay for stateless jobs (0 disables)")
	healthInterval := flag.Duration("health-interval", time.Second, "gateway worker probe interval")
	ingestQuota := flag.Int64("ingest-quota", 0, "per-tenant ingest staging quota in bytes (default 64 MiB)")
	ingestRate := flag.Int64("ingest-rate", 0, "per-tenant sustained ingest rate in bytes/sec (0 disables limiting)")
	ingestBurst := flag.Int64("ingest-burst", 0, "ingest rate-limiter bucket depth in bytes (default: the rate)")
	ingestTenants := flag.Int("ingest-tenants", 0, "distinct ingest tenants with staged data (default 64)")
	cacheDir := flag.String("cachedir", "", "land completed ingest jobs in this experiments-style disk cache")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty disables)")
	flag.Parse()

	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr); err != nil {
			fmt.Fprintf(os.Stderr, "smalld: pprof: %v\n", err)
			os.Exit(1)
		}
	}

	ingestLimits := ingest.Limits{
		TenantBytes: *ingestQuota,
		MaxTenants:  *ingestTenants,
		RateBytes:   *ingestRate,
		BurstBytes:  *ingestBurst,
	}

	if *sweepWorkers > 0 {
		parsweep.SetWorkers(*sweepWorkers)
	}

	switch *role {
	case "standalone", "worker":
	case "gateway":
		runGateway(*addr, *peers, *retries, *hedge, *healthInterval, *timeout, ingestLimits, *cacheDir)
		return
	default:
		fmt.Fprintf(os.Stderr, "smalld: unknown -role %q (want standalone, worker, or gateway)\n", *role)
		os.Exit(1)
	}

	svc := server.New(server.Config{
		QueueDepth:     *queueDepth,
		Workers:        *workers,
		RequestTimeout: *timeout,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		Ingest:         ingestLimits,
		CacheDir:       *cacheDir,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}
	// Print the resolved address first so scripts using -addr :0 can
	// discover the port.
	fmt.Printf("smalld: listening on %s\n", ln.Addr())

	// A worker additionally serves the cluster's binary RPC protocol,
	// replaying request frames into the same handler the HTTP port uses.
	var (
		rpcSrv  *cluster.RPCServer
		rpcDone chan struct{}
	)
	rpcCtx, rpcCancel := context.WithCancel(context.Background())
	defer rpcCancel()
	if *role == "worker" {
		rln, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smalld: rpc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("smalld: rpc listening on %s\n", rln.Addr())
		rpcSrv = cluster.NewRPCServer(svc.Handler())
		rpcDone = make(chan struct{})
		go func() {
			defer close(rpcDone)
			if err := rpcSrv.Serve(rpcCtx, rln); err != nil {
				fmt.Fprintf(os.Stderr, "smalld: rpc: %v\n", err)
			}
		}()
	}

	hs := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		fmt.Println("smalld: draining")
		// Stop accepting, let in-flight handlers finish, then drain the
		// worker queue. RPC drains in parallel with HTTP: frames already
		// executing finish, new ones answer 503.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if rpcSrv != nil {
			rpcSrv.Drain(ctx)
		}
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "smalld: shutdown: %v\n", err)
		}
		svc.Shutdown()
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}
	<-done
	if rpcDone != nil {
		rpcCancel()
		<-rpcDone
	}
	fmt.Println("smalld: stopped")
}

// servePprof starts the profiling listener on its own mux and port,
// kept off the service handler so profiles are never routable from the
// public address. Loopback only: profiling data (goroutine dumps, heap
// contents) is operator-facing, not tenant-facing.
func servePprof(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("bad -pprof address %q: %w", addr, err)
	}
	if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
		return fmt.Errorf("-pprof address %q is not a loopback address", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Printf("smalld: pprof listening on %s\n", ln.Addr())
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "smalld: pprof: %v\n", err)
		}
	}()
	return nil
}

// runGateway serves the gateway role: no local machine, just routing —
// plus the cluster-edge ingest staging area.
func runGateway(addr, peers string, retries int, hedge, healthInterval, timeout time.Duration, ingestLimits ingest.Limits, cacheDir string) {
	var peerList []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) == 0 {
		fmt.Fprintln(os.Stderr, "smalld: gateway role needs -peers host:port[,host:port...]")
		os.Exit(1)
	}
	gw, err := cluster.NewGateway(cluster.Config{
		Peers:          peerList,
		RetryBudget:    retries,
		HedgeDelay:     hedge,
		HealthInterval: healthInterval,
		RequestTimeout: timeout,
		Ingest:         ingestLimits,
		CacheDir:       cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("smalld: listening on %s\n", ln.Addr())
	fmt.Printf("smalld: gateway for %s\n", strings.Join(peerList, ", "))

	hs := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		fmt.Println("smalld: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "smalld: shutdown: %v\n", err)
		}
		gw.Close()
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smalld: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("smalld: stopped")
}
