// Command smallvm compiles mini-Lisp to the SMALL stack machine and runs
// it on a simulated SMALL node (§4.3.4).
//
//	smallvm prog.lisp            # compile + run
//	smallvm -S prog.lisp         # print the instruction listing
//	smallvm -e "(fact 5)" -S     # listing for an expression
//	smallvm -steps 100000 prog.lisp   # bound execution like a smalld budget
//
// Exit status: 0 on success, 1 on errors, 2 on usage errors, 3 when the
// step budget is exhausted (so scripts can tell divergence from failure).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sexpr"
	"repro/internal/vm"
)

func main() {
	asm := flag.Bool("S", false, "print the compiled listing instead of stats")
	expr := flag.String("e", "", "compile this source text instead of files")
	lptSize := flag.Int("table", 2048, "LPT entries")
	input := flag.String("input", "", "s-expressions for (read ...), space separated")
	steps := flag.Int64("steps", 5_000_000, "step budget, matching smalld's default per-eval budget (<= 0: unlimited)")
	flag.Parse()

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: smallvm [-S] <file.lisp> | -e <src>")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallvm: %v\n", err)
			os.Exit(1)
		}
		src = string(data)
	}
	prog, err := vm.Compile(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallvm: %v\n", err)
		os.Exit(1)
	}
	if *asm {
		fmt.Print(prog.Listing())
	}
	m := core.NewMachine(core.Config{LPTSize: *lptSize})
	opts := []vm.Option{vm.WithMachine(m), vm.WithOutput(os.Stdout)}
	if *input != "" {
		vals, err := sexpr.ParseAll(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallvm: bad -input: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, vm.WithInput(vals))
	}
	machine := vm.New(prog, opts...)
	machine.SetStepLimit(*steps)
	v, err := machine.Run()
	if errors.Is(err, vm.ErrStepLimit) {
		fmt.Fprintf(os.Stderr, "smallvm: step budget exhausted after %d steps (raise with -steps, or -steps 0 for no limit)\n", machine.Steps())
		os.Exit(3)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallvm: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("value: %s\n", sexpr.String(v))
	st := m.Stats()
	fmt.Printf("LPT: peak %d, hits %d, misses %d, refops %d, gets %d\n",
		m.PeakInUse(), st.LPT.Hits, st.LPT.Misses, st.LPT.Refops, st.LPT.Gets)
	fmt.Printf("heap: splits %d, merges %d\n", st.HeapSplits, st.HeapMerges)
}
