// Command smallvm compiles mini-Lisp to the SMALL stack machine and runs
// it on a simulated SMALL node (§4.3.4).
//
//	smallvm prog.lisp            # compile + run
//	smallvm -S prog.lisp         # print the instruction listing
//	smallvm -e "(fact 5)" -S     # listing for an expression
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sexpr"
	"repro/internal/vm"
)

func main() {
	asm := flag.Bool("S", false, "print the compiled listing instead of stats")
	expr := flag.String("e", "", "compile this source text instead of files")
	lptSize := flag.Int("table", 2048, "LPT entries")
	input := flag.String("input", "", "s-expressions for (read ...), space separated")
	flag.Parse()

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: smallvm [-S] <file.lisp> | -e <src>")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallvm: %v\n", err)
			os.Exit(1)
		}
		src = string(data)
	}
	prog, err := vm.Compile(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallvm: %v\n", err)
		os.Exit(1)
	}
	if *asm {
		fmt.Print(prog.Listing())
	}
	m := core.NewMachine(core.Config{LPTSize: *lptSize})
	opts := []vm.Option{vm.WithMachine(m), vm.WithOutput(os.Stdout)}
	if *input != "" {
		vals, err := sexpr.ParseAll(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smallvm: bad -input: %v\n", err)
			os.Exit(1)
		}
		opts = append(opts, vm.WithInput(vals))
	}
	v, err := vm.New(prog, opts...).Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "smallvm: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("value: %s\n", sexpr.String(v))
	st := m.Stats()
	fmt.Printf("LPT: peak %d, hits %d, misses %d, refops %d, gets %d\n",
		m.PeakInUse(), st.LPT.Hits, st.LPT.Misses, st.LPT.Refops, st.LPT.Gets)
	fmt.Printf("heap: splits %d, merges %d\n", st.HeapSplits, st.HeapMerges)
}
