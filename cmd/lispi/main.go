// Command lispi runs the Lisp interpreter: on files, on -e expressions,
// or as a REPL. With -trace it writes the s-expression-level list access
// trace (§3.3.1) to the named file. With -small the program executes
// directly on a SMALL machine and the LPT statistics are reported.
//
//	lispi prog.lisp
//	lispi -e "(cons 1 '(2 3))"
//	lispi -trace out.trace -env shallow prog.lisp
//	lispi -small -table 2048 prog.lisp
//	lispi            # REPL
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/lisp"
	"repro/internal/sexpr"
	"repro/internal/smalllisp"
	"repro/internal/trace"
)

func main() {
	expr := flag.String("e", "", "evaluate this expression and exit")
	traceFile := flag.String("trace", "", "write the list access trace to this file")
	envKind := flag.String("env", "deep", "environment: deep, shallow, or cached")
	cacheSize := flag.Int("value-cache", 16, "value cache entries for -env cached")
	steps := flag.Int64("steps", 50_000_000, "evaluation step limit")
	small := flag.Bool("small", false, "execute directly on a SMALL machine")
	table := flag.Int("table", 4096, "LPT entries for -small")
	flag.Parse()

	if *small {
		runOnSmall(*expr, *table, *steps, flag.Args())
		return
	}

	var env lisp.Env
	switch *envKind {
	case "deep":
		env = lisp.NewDeepEnv()
	case "shallow":
		env = lisp.NewShallowEnv()
	case "cached":
		env = lisp.NewCachedDeepEnv(*cacheSize)
	default:
		fmt.Fprintf(os.Stderr, "lispi: unknown env %q\n", *envKind)
		os.Exit(2)
	}

	opts := []lisp.Option{
		lisp.WithEnv(env),
		lisp.WithOutput(os.Stdout),
		lisp.WithStepLimit(*steps),
	}
	var col *lisp.Collector
	if *traceFile != "" {
		col = lisp.NewCollector("lispi")
		opts = append(opts, lisp.WithTrace(col))
	}
	in := lisp.New(opts...)

	exit := func(code int) {
		if col != nil {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
				os.Exit(1)
			}
			if err := trace.Write(f, &col.T); err != nil {
				fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
				os.Exit(1)
			}
		}
		os.Exit(code)
	}

	if *expr != "" {
		v, err := in.Run(*expr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
			exit(1)
		}
		fmt.Println(sexpr.String(v))
		exit(0)
	}

	if flag.NArg() > 0 {
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
				exit(1)
			}
			if _, err := in.Run(string(src)); err != nil {
				fmt.Fprintf(os.Stderr, "lispi: %s: %v\n", path, err)
				exit(1)
			}
		}
		exit(0)
	}

	// REPL
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("lispi> ")
	for sc.Scan() {
		line := sc.Text()
		if line == "(exit)" || line == ":q" {
			break
		}
		if line != "" {
			v, err := in.Run(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			} else {
				fmt.Println(sexpr.String(v))
			}
		}
		fmt.Print("lispi> ")
	}
	exit(0)
}

// runOnSmall executes sources on a SMALL machine and reports LPT stats.
func runOnSmall(expr string, table int, steps int64, files []string) {
	m := core.NewMachine(core.Config{LPTSize: table})
	in := smalllisp.New(
		smalllisp.WithMachine(m),
		smalllisp.WithOutput(os.Stdout),
		smalllisp.WithStepLimit(steps),
	)
	srcs := []string{}
	if expr != "" {
		srcs = append(srcs, expr)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
			os.Exit(1)
		}
		srcs = append(srcs, string(data))
	}
	if len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "lispi: -small needs -e or files")
		os.Exit(2)
	}
	var last sexpr.Value
	for _, src := range srcs {
		v, err := in.Run(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lispi: %v\n", err)
			os.Exit(1)
		}
		last = v
	}
	fmt.Println(sexpr.String(last))
	st := m.Stats()
	fmt.Fprintf(os.Stderr, "LPT: peak %d/%d, hits %d, misses %d, refops %d, heap splits %d\n",
		m.PeakInUse(), table, st.LPT.Hits, st.LPT.Misses, st.LPT.Refops, st.HeapSplits)
}
