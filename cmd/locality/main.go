// Command locality runs the Chapter 3 structural-locality analyses on a
// trace file produced by cmd/tracegen or cmd/lispi -trace.
//
//	locality -sep 0.10 traces/slang.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/locality"
	"repro/internal/trace"
)

func main() {
	sep := flag.Float64("sep", 0.10, "separation constraint as a fraction of trace length")
	window := flag.Int("window", 0, "absolute separation window in events (overrides -sep)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: locality [-sep 0.10] <trace file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "locality: %v\n", err)
		os.Exit(1)
	}
	// Any trace format is accepted: text, binary ("SMTB"), or a
	// preprocessed reference stream ("SMRS"). Stream inputs skip
	// Preprocess; their stats come from the stream itself.
	t, st, err := trace.ReadAuto(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "locality: %v\n", err)
		os.Exit(1)
	}
	if st == nil {
		st = trace.Preprocess(t)
	}

	var p *locality.Partition
	if *window > 0 {
		p = locality.PartitionStreamWindow(st, *window)
	} else {
		p = locality.PartitionStream(st, *sep)
	}

	var s trace.Stats
	if t != nil {
		s = trace.Summarize(t)
	} else {
		s = trace.SummarizeStream(st)
	}
	fmt.Printf("trace %s: %d primitives, %d function calls, %d distinct lists\n",
		st.Name, s.Primitives, s.Functions, st.MaxID)
	fmt.Printf("list sets: %d over %d references\n", len(p.Sets), p.Refs)
	fmt.Printf("sets covering 80%% of references: %d\n", p.SetsForRefPct(80))
	fmt.Printf("references in sets living >=60%% of trace: %.1f%%\n",
		p.PctRefsInSetsLivingAtLeast(60))

	prof := locality.LRUStackDistances(p.AccessSeq)
	fmt.Printf("list-set LRU hit rates: d1=%.1f%% d2=%.1f%% d4=%.1f%% d8=%.1f%%\n",
		prof.HitRate(1), prof.HitRate(2), prof.HitRate(4), prof.HitRate(8))

	cs := trace.Chaining(st)
	fmt.Printf("primitive chaining: car %.1f%%, cdr %.1f%%\n", cs.CarPct, cs.CdrPct)

	var np trace.NPStats
	if t != nil {
		np = trace.MeasureNP(t)
	} else {
		np = trace.MeasureNPStream(st)
	}
	fmt.Printf("list complexity: avg n=%.2f avg p=%.2f over %d lists\n",
		np.AvgN, np.AvgP, np.Lists)
}
