package repro_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/trace"
)

// slangTraceAndForms materialises the scale-1 slang trace once and
// returns it with all three on-disk encodings, so the codec benches
// below measure pure encode/decode cost.
func slangTraceAndForms(b *testing.B) (*trace.Trace, []byte, []byte, []byte) {
	b.Helper()
	t, err := sharedRunner().Trace("slang")
	if err != nil {
		b.Fatal(err)
	}
	var text, bin, refs bytes.Buffer
	if err := trace.Write(&text, t); err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteBinary(&bin, t); err != nil {
		b.Fatal(err)
	}
	if err := trace.WriteStream(&refs, trace.Preprocess(t)); err != nil {
		b.Fatal(err)
	}
	return t, text.Bytes(), bin.Bytes(), refs.Bytes()
}

// --- Trace codec benches (baselines in BENCH_trace.json) ---

func BenchmarkTraceEncodeText(b *testing.B) {
	t, text, _, _ := slangTraceAndForms(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.Write(io.Discard, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncodeBinary(b *testing.B) {
	t, _, bin, _ := slangTraceAndForms(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := trace.WriteBinary(io.Discard, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecodeText(b *testing.B) {
	_, text, _, _ := slangTraceAndForms(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Read(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecodeBinary(b *testing.B) {
	_, _, bin, _ := slangTraceAndForms(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadBinary(bytes.NewReader(bin)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecodeStream(b *testing.B) {
	_, _, _, refs := slangTraceAndForms(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(refs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadStream(bytes.NewReader(refs)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDecodeStreaming walks every event through the streaming
// Decoder without materialising a Trace — the near-zero-alloc path.
func BenchmarkTraceDecodeStreaming(b *testing.B) {
	_, _, bin, _ := slangTraceAndForms(b)
	b.ReportAllocs()
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	var ev trace.Event
	for i := 0; i < b.N; i++ {
		d, err := trace.NewDecoder(bytes.NewReader(bin))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if err := d.Next(&ev); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
